//! `clsm-check` — the history-based correctness soak harness.
//!
//! Runs seeded adversarial schedules against any store in the
//! workspace, records every operation, and checks the resulting
//! history: per-key linearizability for point operations (put, get,
//! delete, RMW, put-if-absent) and serializability for snapshot scans
//! (consistent cuts, staleness floors, cross-snapshot monotonicity,
//! batch atomicity). Crash mode power-cycles a fault-injecting
//! environment mid-run and audits the recovered state against the
//! durable prefix of the history.
//!
//! ```text
//! clsm-check [--system NAME] [--mode clean|crash]
//!            [--check serializable|linearizable]
//!            [--seeds N] [--seed-base S] [--seed S]
//!            [--threads N] [--ops N] [--chaos on|off]
//!            [--mutation NAME] [--json] [--failing-dir DIR]
//! clsm-check --replay FILE [--check serializable|linearizable]
//! ```
//!
//! One verdict per seed; `--json` emits them as JSON lines for CI to
//! archive. Any failing verdict makes the exit status 1, and
//! `--failing-dir` saves each failing history to a file that
//! `clsm-check --replay` re-checks offline (the CI matrix uploads
//! these as artifacts).
//!
//! `--mutation` wraps the store with a deliberately broken shim
//! (lost writes, non-atomic RMW, pinned snapshots, torn batches) to
//! prove the checker *fails* when it should; CI asserts those runs
//! exit non-zero. `--check linearizable` demonstrates the paper's
//! documented anomaly: cLSM snapshots are serializable but not
//! linearizable, so clean runs are expected to fail in that mode.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use clsm_check::driver::{run_schedule, schedule_keys, ScheduleCfg};
use clsm_check::snapcheck::RecoveredState;
use clsm_check::sut::{open_sut, open_sut_with, CrashSut, CRASH_SYSTEMS, SYSTEMS};
use clsm_check::{check_history, CheckMode, Verdict};
use clsm_util::error::{Error, Result};

static DIRS: AtomicU64 = AtomicU64::new(0);

fn fresh_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "clsm-check-{tag}-{}-{}",
        std::process::id(),
        DIRS.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("create scratch dir");
    d
}

struct Cli {
    system: String,
    mode: String,
    check: CheckMode,
    seeds: Vec<u64>,
    threads: Option<usize>,
    ops: Option<usize>,
    chaos: bool,
    mutation: Option<String>,
    json: bool,
    failing_dir: Option<PathBuf>,
    replay: Option<PathBuf>,
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let code = match run(&argv) {
        Ok(failed) => i32::from(failed != 0),
        Err(e) => {
            eprintln!("clsm-check: {e}");
            2
        }
    };
    std::process::exit(code);
}

fn parse(argv: &[String]) -> Result<Cli> {
    let mut cli = Cli {
        system: "clsm".to_string(),
        mode: "clean".to_string(),
        check: CheckMode::Serializable,
        seeds: Vec::new(),
        threads: None,
        ops: None,
        chaos: true,
        mutation: None,
        json: false,
        failing_dir: None,
        replay: None,
    };
    let mut seed_count: u64 = 100;
    let mut seed_base: u64 = 0;
    let mut single_seed: Option<u64> = None;

    fn value<'a>(iter: &mut impl Iterator<Item = &'a String>, flag: &str) -> Result<&'a String> {
        iter.next()
            .ok_or_else(|| Error::invalid_argument(format!("{flag} needs a value")))
    }
    fn number(s: &str, flag: &str) -> Result<u64> {
        s.parse()
            .map_err(|_| Error::invalid_argument(format!("{flag}: not a number: {s:?}")))
    }

    let mut iter = argv.iter();
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--system" => cli.system = value(&mut iter, a)?.clone(),
            "--mode" => {
                let v = value(&mut iter, a)?;
                if v != "clean" && v != "crash" {
                    return Err(Error::invalid_argument(format!(
                        "--mode must be clean or crash, got {v:?}"
                    )));
                }
                cli.mode = v.clone();
            }
            "--check" => {
                cli.check = match value(&mut iter, a)?.as_str() {
                    "serializable" => CheckMode::Serializable,
                    "linearizable" => CheckMode::Linearizable,
                    v => {
                        return Err(Error::invalid_argument(format!(
                            "--check must be serializable or linearizable, got {v:?}"
                        )))
                    }
                };
            }
            "--seeds" => seed_count = number(value(&mut iter, a)?, a)?,
            "--seed-base" => seed_base = number(value(&mut iter, a)?, a)?,
            "--seed" => single_seed = Some(number(value(&mut iter, a)?, a)?),
            "--threads" => cli.threads = Some(number(value(&mut iter, a)?, a)? as usize),
            "--ops" => cli.ops = Some(number(value(&mut iter, a)?, a)? as usize),
            "--chaos" => {
                cli.chaos = match value(&mut iter, a)?.as_str() {
                    "on" => true,
                    "off" => false,
                    v => {
                        return Err(Error::invalid_argument(format!(
                            "--chaos must be on or off, got {v:?}"
                        )))
                    }
                };
            }
            "--mutation" => cli.mutation = Some(value(&mut iter, a)?.clone()),
            "--json" => cli.json = true,
            "--failing-dir" => cli.failing_dir = Some(PathBuf::from(value(&mut iter, a)?)),
            "--replay" => cli.replay = Some(PathBuf::from(value(&mut iter, a)?)),
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                std::process::exit(0);
            }
            other => {
                return Err(Error::invalid_argument(format!(
                    "unknown argument {other:?} (try --help)"
                )))
            }
        }
    }
    cli.seeds = match single_seed {
        Some(s) => vec![s],
        None => (seed_base..seed_base + seed_count).collect(),
    };
    Ok(cli)
}

const USAGE: &str = "\
clsm-check: history-based linearizability/serializability soak harness

  clsm-check [--system NAME] [--mode clean|crash]
             [--check serializable|linearizable]
             [--seeds N] [--seed-base S] [--seed S]
             [--threads N] [--ops N] [--chaos on|off]
             [--mutation NAME] [--json] [--failing-dir DIR]
  clsm-check --replay FILE [--check serializable|linearizable]

Exit status: 0 all seeds passed, 1 at least one verdict failed.";

/// Runs the requested matrix; returns the number of failing verdicts.
fn run(argv: &[String]) -> Result<usize> {
    let cli = parse(argv)?;

    if let Some(path) = &cli.replay {
        let text = std::fs::read_to_string(path)?;
        let events = clsm_check::history::parse_history(&text)?;
        let verdict = check_history("replay", "replay", 0, &events, None, cli.check);
        report(&verdict, &cli);
        return Ok(usize::from(!verdict.pass));
    }

    if !SYSTEMS.contains(&cli.system.as_str()) {
        return Err(Error::invalid_argument(format!(
            "unknown system {:?}; known: {SYSTEMS:?}",
            cli.system
        )));
    }
    if cli.mode == "crash" && !CRASH_SYSTEMS.contains(&cli.system.as_str()) {
        return Err(Error::invalid_argument(format!(
            "system {:?} does not support crash mode; known: {CRASH_SYSTEMS:?}",
            cli.system
        )));
    }

    let mut failed = 0usize;
    for &seed in &cli.seeds {
        let verdict = if cli.mode == "crash" {
            run_crash(&cli, seed)?
        } else {
            run_clean(&cli, seed)?
        };
        if !verdict.pass {
            failed += 1;
        }
        report(&verdict, &cli);
    }
    if !cli.json {
        println!(
            "{}/{} seeds passed on {} ({})",
            cli.seeds.len() - failed,
            cli.seeds.len(),
            cli.system,
            cli.mode
        );
    }
    Ok(failed)
}

fn schedule(cli: &Cli, seed: u64) -> ScheduleCfg {
    let mut cfg = ScheduleCfg::new(seed);
    if let Some(t) = cli.threads {
        cfg.threads = t;
    }
    if let Some(o) = cli.ops {
        cfg.ops_per_thread = o;
    }
    cfg
}

fn run_clean(cli: &Cli, seed: u64) -> Result<Verdict> {
    let dir = fresh_dir(&format!("clean-{}", cli.system));
    let sut = open_sut(&cli.system, &dir)?;
    let mut cfg = schedule(cli, seed);
    cfg.caps = sut.caps;
    let store = match &cli.mutation {
        Some(name) => clsm_check::mutations::mutate(name, Arc::clone(&sut.store))?,
        None => Arc::clone(&sut.store),
    };
    let chaos = cli.chaos.then(|| sut.chaos.clone()).flatten();
    let events = run_schedule(store, chaos, &cfg);
    let system = match &cli.mutation {
        Some(name) => format!("{}+{name}", cli.system),
        None => cli.system.clone(),
    };
    let verdict = check_history(&system, "clean", seed, &events, None, cli.check);
    save_failing(&verdict, &events, cli)?;
    drop(sut);
    let _ = std::fs::remove_dir_all(&dir);
    Ok(verdict)
}

fn run_crash(cli: &Cli, seed: u64) -> Result<Verdict> {
    let dir = fresh_dir(&format!("crash-{}", cli.system));
    let crash = CrashSut::open(&cli.system, &dir, seed)?;
    let mut cfg = schedule(cli, seed);
    cfg.caps = clsm_check::SutCaps::full();
    let store = match &cli.mutation {
        Some(name) => clsm_check::mutations::mutate(name, Arc::clone(&crash.store))?,
        None => Arc::clone(&crash.store),
    };
    // No chaos thread: the fault env injects the adversity here, and
    // the chaos hooks hold store Arcs that would outlive power loss.
    let events = run_schedule(store, None, &cfg);
    let at = events.iter().map(|e| e.response).max().unwrap_or(0) + 1;

    let CrashSut { store, env } = crash;
    drop(store); // last live Arc: all recorders joined inside run_schedule
    env.power_loss();

    let reopened = open_sut_with(
        &cli.system,
        &dir,
        Some(env.clone() as Arc<dyn clsm_util::env::Env>),
        true,
    )?;
    let mut reads = Vec::new();
    for key in schedule_keys(cfg.key_space) {
        let value = reopened.store.get(&key)?;
        reads.push((key, value));
    }
    let recovered = RecoveredState { at, reads };
    let system = match &cli.mutation {
        Some(name) => format!("{}+{name}", cli.system),
        None => cli.system.clone(),
    };
    let verdict = check_history(&system, "crash", seed, &events, Some(&recovered), cli.check);
    save_failing(&verdict, &events, cli)?;
    drop(reopened);
    let _ = std::fs::remove_dir_all(&dir);
    Ok(verdict)
}

/// Writes the full failing history where `--failing-dir` asked for it.
fn save_failing(verdict: &Verdict, events: &[clsm_kv::record::KvEvent], cli: &Cli) -> Result<()> {
    if verdict.pass {
        return Ok(());
    }
    let Some(dir) = &cli.failing_dir else {
        return Ok(());
    };
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!(
        "{}-{}-seed{}.history",
        verdict.system.replace('/', "_"),
        verdict.mode,
        verdict.seed
    ));
    std::fs::write(&path, clsm_check::history::history_to_string(events))?;
    eprintln!("clsm-check: failing history saved to {}", path.display());
    Ok(())
}

fn report(verdict: &Verdict, cli: &Cli) {
    if cli.json {
        println!("{}", verdict.to_json());
        return;
    }
    if verdict.pass {
        println!(
            "PASS {} {} seed {} ({} events)",
            verdict.system, verdict.mode, verdict.seed, verdict.events
        );
    } else {
        println!(
            "FAIL {} {} seed {} ({} events)",
            verdict.system, verdict.mode, verdict.seed, verdict.events
        );
        for f in &verdict.failures {
            println!("  - {f}");
        }
        if !verdict.counterexample.is_empty() {
            println!(
                "  minimized counterexample ({} events):",
                verdict.counterexample.len()
            );
            for e in &verdict.counterexample {
                println!("    {}", clsm_check::history::event_to_json(e));
            }
        }
    }
}
