//! Figure 9 — read-modify-write throughput.
//!
//! "A 100% put-if-absent scenario with locality. cLSM improves upon
//! lock-striping by 150%." Compares cLSM's non-blocking Algorithm 3
//! against the textbook lock-striped LevelDB baseline.

use bench::driver::{emit, sweep_threads, Metric};
use bench::systems::{CLSM, STRIPED};
use clsm_workloads::WorkloadSpec;

fn main() {
    let args = bench::parse_args();
    let spec = WorkloadSpec::rmw(args.key_space());
    let tables = sweep_threads(
        &args,
        "Figure 9 (RMW put-if-absent)",
        &[STRIPED, CLSM],
        &spec,
        &[(Metric::KopsPerSec, "RMW throughput (Kops/s) [Fig 9]")],
    )
    .expect("benchmark failed");
    emit(&args, &tables).expect("emit failed");
}
