//! Sharded-cLSM scaling sweep (Figure-1-style, resource-shared).
//!
//! Runs the `cLSM-sharded` system — N range shards behind one shared
//! timestamp oracle — on the mixed 50/50 workload for the configured
//! `--shards` count. Unlike Figure 1's resource-*isolated* partitioned
//! baselines, every worker thread serves the whole key space and any
//! shard; cross-shard batches and scans stay serializable because all
//! shards draw timestamps from the same oracle.
//!
//! Repeat with `--shards 1,2,4,8` (one invocation each) to reproduce
//! the horizontal-scaling comparison; each run writes the aggregated
//! metrics JSON plus one `…-shard-NNN.metrics.json` per shard so range
//! load imbalance is visible.

use bench::driver::{emit, sweep_threads, Metric};
use bench::systems::CLSM_SHARDED;
use clsm_workloads::WorkloadSpec;

fn main() {
    let args = bench::parse_args();

    let spec = WorkloadSpec::mixed(args.key_space());
    let figure = format!("Sharded scaling ({} shards)", args.shards);
    let tables = sweep_threads(
        &args,
        &figure,
        &[CLSM_SHARDED],
        &spec,
        &[
            (
                Metric::KopsPerSec,
                "Mixed read/write throughput (Kops/s) [sharded]",
            ),
            (Metric::P90LatencyUs, "p90 latency (µs) [sharded]"),
        ],
    )
    .expect("sharded sweep failed");
    emit(&args, &tables).expect("emit failed");
}
