//! Figure 8 — benefit from a larger memory component.
//!
//! "Mixed reads and writes benefit from memory component size with 8
//! threads. cLSM successfully exploits RAM buffers of up to 512 MB,
//! whereas LevelDB can only exploit 16 MB."
//!
//! We sweep the memtable budget (scaled down in quick mode) under the
//! Figure 7a mix with a fixed thread count, comparing cLSM to LevelDB.
//! Shape to look for: LevelDB's curve flattens almost immediately;
//! cLSM keeps improving with the buffer.

use bench::driver::{run_one, Metric};
use bench::report::Table;
use bench::systems::{CLSM, LEVELDB};
use clsm_workloads::{RunConfig, WorkloadSpec};

fn main() {
    let args = bench::parse_args();
    let threads = 8usize;
    // Memtable sizes: the paper sweeps 1 MB → 512 MB; quick mode scales
    // each point down 16×.
    let sizes_mb: Vec<usize> = vec![1, 4, 8, 16, 32, 64];
    let scale = if args.quick { 4 } else { 1 };

    let columns: Vec<String> = sizes_mb.iter().map(|m| format!("{m}MB")).collect();
    let mut table = Table::new(
        "Figure 8 — Mixed r/w throughput vs memtable size, 8 threads (Kops/s)",
        "memtable",
        columns,
    );

    let spec = WorkloadSpec::mixed(args.key_space());
    for sys in [LEVELDB, CLSM] {
        for (col, &mb) in sizes_mb.iter().enumerate() {
            let mut opts = args.store_options();
            opts.memtable_bytes = mb * 1024 * 1024 / scale;
            let dir = args
                .scratch(&format!("fig8-{}-{}mb", sys.name(), mb))
                .expect("scratch dir");
            let store = sys.open(&dir, opts).expect("open store");
            clsm_workloads::runner::prefill_store(store.as_ref(), &spec).expect("prefill");
            let cfg = RunConfig {
                threads,
                duration: args.cell(),
                seed: args.seed,
            };
            let r = run_one(&store, &spec, &cfg).expect("run");
            eprintln!(
                "[fig8] {:<10} mem={:>4}MB  {:>10.1} ops/s",
                sys.name(),
                mb,
                r.ops_per_sec()
            );
            table.set(sys.name(), col, Metric::KopsPerSec.extract(&r));
            drop(store);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
    table.print();
    let path = table.to_csv(&args.out_dir).expect("csv");
    eprintln!("wrote {}", path.display());
}
