//! `clsm-doctor` — database and trace introspection CLI.
//!
//! Two modes:
//!
//! - `clsm-doctor <db-dir> [--populate N] [--shards N]` opens (or
//!   creates) a database and prints a [`clsm::DoctorReport`]: memtable
//!   fill, immutable-queue state, level geometry, live snapshots,
//!   oracle timestamps, and stall-watchdog verdicts. `--populate`
//!   writes N keys first (through the normal put path, so flushes and
//!   compactions run), which makes the tool usable as a smoke test on
//!   an empty directory. Range-sharded directories (those containing a
//!   `SHARDS` manifest) are detected automatically and reported as a
//!   [`clsm::ShardedDoctorReport`] — shared-oracle state up top, one
//!   full per-shard report below; `--shards N` creates a fresh sharded
//!   database when the directory is empty. `--crash-audit` prints the
//!   durability forensics of the open instead: which WALs recovery
//!   replayed, how many records came back, torn WAL tails, manifest
//!   damage, and (for sharded directories) cross-shard batches the
//!   recovery audit found torn and dropped.
//! - `clsm-doctor --replay <trace.json>` parses a flight-recorder
//!   artifact (the Chrome trace-format JSON written by the bench
//!   binaries' `--trace` flag) and prints per-span duration
//!   statistics, no running database required.
//! - `clsm-doctor --connect HOST:PORT [--shutdown]` dials a running
//!   `clsm-server` over the binary protocol, fetches its merged
//!   metrics via the stats opcode (`net.*` counters, per-opcode
//!   latency histograms, and the store's own registry), and prints
//!   them. `--shutdown` then asks the server to exit cleanly.

use std::collections::HashMap;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use clsm::{Db, Options, ShardedDb};
use clsm_util::error::Result;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let code = match run(&argv) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("clsm-doctor: {e}");
            1
        }
    };
    std::process::exit(code);
}

fn run(argv: &[String]) -> Result<()> {
    let mut dir: Option<PathBuf> = None;
    let mut populate: u64 = 0;
    let mut shards: usize = 1;
    let mut replay: Option<PathBuf> = None;
    let mut crash_audit = false;
    let mut watch_ms: Option<u64> = None;
    let mut watch_count: Option<u64> = None;
    let mut connect: Option<String> = None;
    let mut shutdown = false;

    let mut iter = argv.iter();
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--connect" => {
                connect = Some(
                    iter.next()
                        .cloned()
                        .unwrap_or_else(|| usage("--connect needs HOST:PORT")),
                );
            }
            "--shutdown" => shutdown = true,
            "--replay" => {
                replay = Some(PathBuf::from(
                    iter.next()
                        .map(String::as_str)
                        .unwrap_or_else(|| usage("--replay needs a trace file")),
                ));
            }
            "--populate" => {
                populate = iter
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--populate needs a count"));
            }
            "--shards" => {
                shards = iter
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage("--shards needs a count >= 1"));
            }
            "--crash-audit" => crash_audit = true,
            "--watch" => {
                watch_ms = Some(
                    iter.next()
                        .and_then(|s| s.parse().ok())
                        .filter(|&ms| ms >= 1)
                        .unwrap_or_else(|| usage("--watch needs an interval in ms >= 1")),
                );
            }
            "--watch-count" => {
                watch_count = Some(
                    iter.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage("--watch-count needs a count")),
                );
            }
            "--help" | "-h" => usage(""),
            other if other.starts_with('-') => usage(&format!("unknown flag {other}")),
            path => {
                if dir.is_some() {
                    usage("only one db directory");
                }
                dir = Some(PathBuf::from(path));
            }
        }
    }

    if let Some(addr) = connect {
        if dir.is_some() || replay.is_some() {
            usage("--connect cannot be combined with <db-dir> or --replay");
        }
        return connect_server(&addr, shutdown);
    }
    if shutdown {
        usage("--shutdown only makes sense with --connect");
    }
    match (dir, replay) {
        (None, Some(trace)) => replay_trace(&trace),
        (Some(dir), None) if crash_audit => audit_db(&dir, shards),
        (Some(dir), None) => match watch_ms {
            Some(ms) => watch_db(&dir, populate, shards, ms, watch_count),
            None => examine_db(&dir, populate, shards),
        },
        _ => usage("pass exactly one of <db-dir>, --replay FILE, or --connect ADDR"),
    }
}

/// Dials a running `clsm-server`, prints the merged stats the server
/// returns over the wire (net.* registry + store registry), and
/// optionally asks it to shut down.
fn connect_server(addr: &str, shutdown: bool) -> Result<()> {
    let net = clsm_net::NetOptions::builder()
        .addr(addr)
        .connections(1)
        .build()?;
    let client = clsm_net::Client::connect(&net)?;
    let mut out = String::new();
    {
        use std::fmt::Write as _;
        let _ = writeln!(out, "== clsm-doctor connect: {addr} ==");
    }
    out.push_str(&client.stats_text()?);
    if shutdown {
        client.shutdown_server()?;
        out.push_str("server shutdown requested: ok\n");
    }
    print_all(&out)
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: clsm-doctor <db-dir> [--populate N] [--shards N] [--crash-audit] \
         [--watch MS [--watch-count N]]"
    );
    eprintln!("       clsm-doctor --replay <trace.json>");
    eprintln!("       clsm-doctor --connect HOST:PORT [--shutdown]");
    std::process::exit(if msg.is_empty() { 0 } else { 2 });
}

/// Opens the database and prints the doctor report. Small tables and
/// memtable so `--populate` on an empty directory exercises flushes
/// and compactions rather than parking everything in memory. A
/// directory holding a `SHARDS` manifest (or a `--shards N` request on
/// a fresh one) is opened as a [`ShardedDb`] instead; the manifest is
/// authoritative on reopen, so no flag is needed to inspect an
/// existing sharded database.
fn examine_db(dir: &std::path::Path, populate: u64, shards: usize) -> Result<()> {
    if shards > 1 || dir.join("SHARDS").exists() {
        let mut opts = Options::small_for_tests();
        opts.shards = shards;
        let db = ShardedDb::open(dir, opts)?;
        populate_keys(populate, |k, v| db.put(k, v))?;
        if populate > 0 {
            db.compact_to_quiescence()?;
        }
        return print_all(&db.doctor().render());
    }
    let db = Db::open(dir, Options::small_for_tests())?;
    populate_keys(populate, |k, v| db.put(k, v))?;
    if populate > 0 {
        db.compact_to_quiescence()?;
    }
    print_all(&db.doctor().render())
}

/// Live dashboard mode (`--watch MS`): samples the store's metrics
/// every `interval_ms` and prints one rates/p99 line per tick (see
/// [`clsm::watch_dashboard_line`] for column semantics). With
/// `--populate N` the keys are written by a background thread while
/// the dashboard runs, and the watch ends when the writer finishes;
/// `--watch-count N` caps the tick count instead (and without either
/// bound the watch runs until interrupted).
fn watch_db(
    dir: &std::path::Path,
    populate: u64,
    shards: usize,
    interval_ms: u64,
    watch_count: Option<u64>,
) -> Result<()> {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let store: Arc<dyn clsm::KvStore> = if shards > 1 || dir.join("SHARDS").exists() {
        let mut opts = Options::small_for_tests();
        opts.shards = shards;
        Arc::new(ShardedDb::open(dir, opts)?)
    } else {
        Arc::new(Db::open(dir, Options::small_for_tests())?)
    };

    let done = Arc::new(AtomicBool::new(false));
    let writer = (populate > 0).then(|| {
        let store = Arc::clone(&store);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let r = populate_keys(populate, |k, v| store.put(k, v));
            done.store(true, Ordering::Release);
            r
        })
    });

    print_all(&format!("{}\n", clsm::watch_dashboard_header()))?;
    let interval = Duration::from_millis(interval_ms);
    let mut prev = store.stats();
    // Rates must divide by the time the window actually covered, not
    // the nominal sleep: sampling and printing add overhead every
    // tick, and under load the sleep itself oversleeps. Dividing by
    // the nominal interval inflated every rate by that slack.
    let mut prev_at = Instant::now();
    let mut ticks = 0u64;
    loop {
        std::thread::sleep(interval);
        let cur = store.stats();
        let sampled_at = Instant::now();
        print_all(&format!(
            "{}\n",
            clsm::watch_dashboard_line(&prev, &cur, sampled_at - prev_at)
        ))?;
        prev_at = sampled_at;
        prev = cur;
        ticks += 1;
        if watch_count.is_some_and(|n| ticks >= n) {
            break;
        }
        if watch_count.is_none() && populate > 0 && done.load(Ordering::Acquire) {
            break;
        }
    }
    if let Some(writer) = writer {
        writer.join().expect("populate thread panicked")?;
    }
    Ok(())
}

/// Opens the database and prints what recovery found: WALs replayed,
/// records recovered, torn tails, manifest damage, and (sharded) the
/// cross-shard batches dropped as torn. Exit is nonzero only when the
/// open itself fails — torn tails are a report, not an error.
fn audit_db(dir: &std::path::Path, shards: usize) -> Result<()> {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "== clsm-doctor crash audit: {} ==", dir.display());
    if shards > 1 || dir.join("SHARDS").exists() {
        let mut opts = Options::small_for_tests();
        opts.shards = shards;
        let db = ShardedDb::open(dir, opts)?;
        for (i, report) in db.recovery_reports().iter().enumerate() {
            render_recovery(&mut out, &format!("shard {i}"), report);
        }
        if db.torn_batches().is_empty() {
            let _ = writeln!(out, "cross-shard batches: none torn");
        } else {
            let _ = writeln!(
                out,
                "cross-shard batches TORN and dropped at ts: {:?}",
                db.torn_batches()
            );
        }
        return print_all(&out);
    }
    let db = Db::open(dir, Options::small_for_tests())?;
    render_recovery(&mut out, "db", db.recovery_report());
    print_all(&out)
}

fn render_recovery(out: &mut String, label: &str, report: &clsm::RecoveryReport) {
    use std::fmt::Write as _;
    let _ = writeln!(
        out,
        "{label}: replayed {} WAL(s) {:?}, {} record(s) recovered",
        report.wals_replayed.len(),
        report.wals_replayed,
        report.records_recovered
    );
    if report.torn_tails.is_empty() {
        let _ = writeln!(out, "{label}:   WAL tails clean");
    } else {
        for (wal, offset) in &report.torn_tails {
            let _ = writeln!(
                out,
                "{label}:   WAL {wal} torn at byte {offset} (un-acked tail, dropped)"
            );
        }
    }
    if let Some(at) = report.manifest_torn_at {
        let _ = writeln!(out, "{label}:   MANIFEST torn at byte {at} (tail dropped)");
    }
}

/// Writes `populate` fixed-size keys through the given put closure.
fn populate_keys(populate: u64, mut put: impl FnMut(&[u8], &[u8]) -> Result<()>) -> Result<()> {
    if populate == 0 {
        return Ok(());
    }
    eprintln!("populating {populate} keys…");
    let value = vec![0xabu8; 100];
    for i in 0..populate {
        put(format!("doctor.{i:012}").as_bytes(), &value)?;
    }
    Ok(())
}

/// Statistics accumulated per span name while replaying a trace file.
#[derive(Default)]
struct ReplayStat {
    count: u64,
    total_ns: u64,
    max_ns: u64,
    instants: u64,
}

/// Parses the one-event-per-line Chrome trace JSON and prints span
/// statistics. The writer (`TraceSnapshot::to_chrome_json`) guarantees
/// one self-contained object per line, so a field-scraping parser is
/// enough — no JSON library in the workspace, none needed.
fn replay_trace(path: &std::path::Path) -> Result<()> {
    let text = std::fs::read_to_string(path)?;
    // (tid, name) -> stack of open begin timestamps (ns).
    let mut open: HashMap<(u64, String), Vec<u64>> = HashMap::new();
    let mut stats: HashMap<String, ReplayStat> = HashMap::new();
    let mut events = 0u64;
    let mut threads = std::collections::HashSet::new();

    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        if !line.starts_with('{') {
            continue;
        }
        let Some(ph) = str_field(line, "ph") else {
            continue;
        };
        if ph == "M" {
            continue; // metadata (process/thread names)
        }
        let Some(name) = str_field(line, "name") else {
            continue;
        };
        let tid = num_field(line, "tid").unwrap_or(0.0) as u64;
        let ts_ns = (num_field(line, "ts").unwrap_or(0.0) * 1000.0) as u64;
        events += 1;
        threads.insert(tid);
        match ph.as_str() {
            "B" => open.entry((tid, name)).or_default().push(ts_ns),
            "E" => {
                if let Some(begin) = open
                    .get_mut(&(tid, name.clone()))
                    .and_then(std::vec::Vec::pop)
                {
                    let d = ts_ns.saturating_sub(begin);
                    let s = stats.entry(name).or_default();
                    s.count += 1;
                    s.total_ns += d;
                    s.max_ns = s.max_ns.max(d);
                }
            }
            "i" => stats.entry(name).or_default().instants += 1,
            _ => {}
        }
    }

    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "== clsm-doctor replay ==");
    let _ = writeln!(
        out,
        "trace: {} ({} events, {} threads)",
        path.display(),
        events,
        threads.len()
    );
    let mut rows: Vec<(String, ReplayStat)> = stats.into_iter().collect();
    rows.sort_by_key(|r| std::cmp::Reverse(r.1.total_ns));
    let _ = writeln!(
        out,
        "{:<36} {:>8} {:>12} {:>12} {:>9}",
        "span", "count", "total", "max", "instants"
    );
    for (name, s) in rows {
        let _ = writeln!(
            out,
            "{:<36} {:>8} {:>12} {:>12} {:>9}",
            name,
            s.count,
            format!("{:.3?}", Duration::from_nanos(s.total_ns)),
            format!("{:.3?}", Duration::from_nanos(s.max_ns)),
            s.instants
        );
    }
    print_all(&out)
}

/// Writes the report to stdout; a closed pipe (`clsm-doctor … | head`)
/// is a normal way to consume the output, not an error.
fn print_all(out: &str) -> Result<()> {
    use std::io::Write as _;
    match std::io::stdout().write_all(out.as_bytes()) {
        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => Ok(()),
        other => Ok(other?),
    }
}

/// Extracts `"key":"value"` from a single-line JSON object.
fn str_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')?;
    Some(line[start..start + end].to_string())
}

/// Extracts `"key":<number>` from a single-line JSON object.
fn num_field(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}
