//! Ablation — group-commit leader pipeline vs. per-writer commits.
//!
//! The commit pipeline (`Db::write`) batches concurrent writers behind
//! an elected leader: one timestamp-block allocation, one coalesced WAL
//! append, one publish pass per group. This ablation runs the same
//! write-only sweep with `group_commit` on and off so the contended
//! write path's benefit (and the uncontended cost) is measurable.

use std::sync::Arc;

use bench::driver::{median_by_throughput, run_one, Metric};
use bench::report::Table;
use clsm::Db;
use clsm_baselines::KvStore;
use clsm_workloads::{RunConfig, WorkloadSpec};

fn main() {
    let args = bench::parse_args();
    bench::driver::warmup(&args);
    let spec = WorkloadSpec::write_only(args.key_space());
    if args.trace.is_some() {
        clsm_util::trace::enable_default();
    }
    let columns: Vec<String> = args.threads.iter().map(|t| t.to_string()).collect();
    let mut table = Table::new(
        "Ablation — write throughput by commit pipeline (Kops/s)",
        "threads",
        columns,
    );

    for (group_commit, label) in [(true, "group-commit"), (false, "per-writer")] {
        let mut opts = args.store_options();
        opts.group_commit = group_commit;
        // Every cell and repetition gets a fresh store: reusing one
        // store across the sweep makes later cells run against a
        // deeper LSM tree, so the thread axis would measure
        // accumulated compaction work, not concurrency.
        // Repetitions are interleaved across thread counts (rep-major)
        // so minute-scale machine drift hits every cell of the sweep
        // equally instead of biasing whichever cell ran first.
        let mut cells: Vec<Vec<_>> = vec![Vec::new(); args.threads.len()];
        for rep in 0..args.repeat {
            for (col, &threads) in args.threads.iter().enumerate() {
                let dir = args
                    .scratch(&format!("ablate-gc-{label}-{threads}t-{rep}"))
                    .expect("scratch");
                let store: Arc<dyn KvStore> = Arc::new(Db::open(&dir, opts.clone()).expect("open"));
                let cfg = RunConfig {
                    threads,
                    duration: args.cell(),
                    seed: args.seed + rep as u64,
                };
                cells[col].push(run_one(&store, &spec, &cfg).expect("run"));
                drop(store);
                let _ = std::fs::remove_dir_all(&dir);
            }
        }
        for (col, (&threads, reps)) in args.threads.iter().zip(cells).enumerate() {
            let r = median_by_throughput(reps);
            eprintln!(
                "[ablate-gc] {label:<14} threads={threads:<3} {:>10.1} ops/s  p90={:.1}us",
                r.ops_per_sec(),
                r.p90_latency_us()
            );
            table.set(label, col, Metric::KopsPerSec.extract(&r));
        }
    }
    if let Some(path) = &args.trace {
        let snap = clsm_util::trace::drain();
        clsm_util::trace::disable();
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir).expect("trace dir");
        }
        std::fs::write(path, snap.to_chrome_json()).expect("trace");
        eprintln!(
            "wrote trace {} ({} events)",
            path.display(),
            snap.events.len()
        );
    }
    table.print();
    table.to_csv(&args.out_dir).expect("csv");
}
