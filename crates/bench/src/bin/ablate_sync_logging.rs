//! Ablation — asynchronous vs. synchronous logging.
//!
//! §2.3/§4: asynchronous logging (the default) lets puts complete at
//! memory speed, at the risk of losing a torn tail on a crash;
//! synchronous logging group-commits an fsync per acknowledged write.
//! This ablation measures the write-throughput gap, which is what the
//! paper's "writes occur at memory speed" design choice buys.

use bench::driver::{emit, sweep_threads, Metric};
use bench::report::Table;
use bench::systems::CLSM;
use clsm_workloads::{RunConfig, WorkloadSpec};

fn main() {
    let args = bench::parse_args();
    let spec = WorkloadSpec::write_only(args.key_space());

    // Async mode: the regular Figure 5 write path for cLSM only.
    let async_tables = sweep_threads(
        &args,
        "Ablation sync-logging (async)",
        &[CLSM],
        &spec,
        &[(
            Metric::KopsPerSec,
            "cLSM write throughput, async logging (Kops/s)",
        )],
    )
    .expect("async run failed");
    emit(&args, &async_tables).expect("emit");

    // Sync mode: same sweep with fsync-per-write (group-committed).
    let columns: Vec<String> = args.threads.iter().map(|t| t.to_string()).collect();
    let mut table = Table::new(
        "Ablation sync-logging (sync) — cLSM write throughput, fsync per write (Kops/s)",
        "threads",
        columns,
    );
    let mut opts = args.store_options();
    opts.sync_writes = true;
    let dir = args.scratch("ablate-sync").expect("scratch");
    let store = CLSM.open(&dir, opts).expect("open");
    for (col, &threads) in args.threads.iter().enumerate() {
        let cfg = RunConfig {
            threads,
            duration: args.cell(),
            seed: args.seed,
        };
        let r = bench::driver::run_one(&store, &spec, &cfg).expect("run");
        eprintln!(
            "[ablate-sync] sync  threads={threads:<3} {:>10.1} ops/s  p90={:.1}us",
            r.ops_per_sec(),
            r.p90_latency_us()
        );
        table.set("cLSM sync", col, Metric::KopsPerSec.extract(&r));
    }
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
    table.print();
    table.to_csv(&args.out_dir).expect("csv");
}
