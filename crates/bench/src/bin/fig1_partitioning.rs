//! Figure 1 — partitioning (horizontal) vs shared concurrency
//! (vertical) scalability.
//!
//! "The resource-isolated configuration exercises LevelDB and
//! HyperLevelDB with 4 separate partitions, whereas the resource-shared
//! configuration evaluates cLSM with one big partition" — each small
//! partition gets a dedicated quarter of the worker threads; the big
//! partition is served by all of them. The workload is the production
//! mix (§5.2), partitioned by key range; the big partition runs the
//! union.
//!
//! Paper shape: cLSM's one big partition overtakes the partitioned
//! configurations as threads grow (~25% above at peak).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use bench::report::Table;
use bench::systems::{CLSM, HYPER, LEVELDB};
use clsm_baselines::KvStore;
use clsm_workloads::keygen::{format_key, value_for};
use clsm_workloads::Zipf;

const PARTS: usize = 4;
const READ_PCT: u32 = 90;
const KEY_LEN: usize = 40;
const VALUE_LEN: usize = 1024;

fn main() {
    let args = bench::parse_args();
    let key_space = args.key_space();
    let threads_sweep: Vec<usize> = args
        .threads
        .iter()
        .copied()
        .filter(|&t| t >= PARTS || t == 1 || t == 2)
        .collect();

    let columns: Vec<String> = threads_sweep.iter().map(|t| t.to_string()).collect();
    let mut table = Table::new(
        "Figure 1 — Partitioned (resource-isolated) vs one big partition (Kops/s)",
        "threads",
        columns,
    );

    // Partitioned configurations: 4 stores, threads pinned per store.
    for sys in [LEVELDB, HYPER] {
        let mut stores = Vec::new();
        for p in 0..PARTS {
            let dir = args
                .scratch(&format!("fig1-{}-p{}", sys.name(), p))
                .expect("scratch dir");
            let store = sys.open(&dir, args.store_options()).expect("open");
            prefill_range(&*store, p, key_space);
            stores.push(store);
        }
        for (col, &threads) in threads_sweep.iter().enumerate() {
            let ops = run_pinned(&stores, threads, key_space, args.cell(), args.seed);
            let kops = ops / 1000.0;
            eprintln!(
                "[fig1] {:<14} x{} partitions threads={:<3} {:>8.1} Kops/s",
                sys.name(),
                PARTS,
                threads,
                kops
            );
            table.set(&format!("{} x4 partitions", sys.name()), col, kops);
        }
    }

    // Resource-shared configuration: one big cLSM partition, all
    // threads on the union workload.
    {
        let dir = args.scratch("fig1-clsm-big").expect("scratch dir");
        let store = CLSM.open(&dir, args.store_options()).expect("open");
        for p in 0..PARTS {
            prefill_range(&*store, p, key_space);
        }
        let stores = [store];
        for (col, &threads) in threads_sweep.iter().enumerate() {
            let ops = run_shared(&stores[0], threads, key_space, args.cell(), args.seed);
            let kops = ops / 1000.0;
            eprintln!("[fig1] cLSM one partition  threads={threads:<3} {kops:>8.1} Kops/s");
            table.set("cLSM one partition", col, kops);
        }
    }

    table.print();
    let path = table.to_csv(&args.out_dir).expect("csv");
    eprintln!("wrote {}", path.display());
}

/// Loads partition `p`'s key range (a quarter of the space).
fn prefill_range(store: &dyn KvStore, p: usize, key_space: u64) {
    let part_len = key_space / PARTS as u64;
    let base = p as u64 * part_len;
    for i in 0..part_len / 2 {
        let key = format_key(base + i, KEY_LEN);
        store
            .put(&key, &value_for(base + i, VALUE_LEN))
            .expect("prefill put");
    }
    store.quiesce().expect("quiesce");
}

/// Resource isolation: thread `t` only serves partition `t % PARTS`.
fn run_pinned(
    stores: &[Arc<dyn KvStore>],
    threads: usize,
    key_space: u64,
    duration: std::time::Duration,
    seed: u64,
) -> f64 {
    let stop = Arc::new(AtomicBool::new(false));
    let total = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let store = Arc::clone(&stores[t % stores.len()]);
            let stop = Arc::clone(&stop);
            let total = Arc::clone(&total);
            let part = t % stores.len();
            scope.spawn(move || {
                let ops = worker_loop(&*store, part, key_space, seed ^ t as u64, &stop);
                total.fetch_add(ops, Ordering::Relaxed);
            });
        }
        std::thread::sleep(duration);
        stop.store(true, Ordering::Relaxed);
    });
    total.load(Ordering::Relaxed) as f64 / start.elapsed().as_secs_f64()
}

/// Resource sharing: every thread serves the whole key space.
fn run_shared(
    store: &Arc<dyn KvStore>,
    threads: usize,
    key_space: u64,
    duration: std::time::Duration,
    seed: u64,
) -> f64 {
    let stop = Arc::new(AtomicBool::new(false));
    let total = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let store = Arc::clone(store);
            let stop = Arc::clone(&stop);
            let total = Arc::clone(&total);
            scope.spawn(move || {
                // Partition rotates per op: the union workload.
                let ops = worker_loop(&*store, t % PARTS, key_space, seed ^ t as u64, &stop);
                total.fetch_add(ops, Ordering::Relaxed);
            });
        }
        std::thread::sleep(duration);
        stop.store(true, Ordering::Relaxed);
    });
    total.load(Ordering::Relaxed) as f64 / start.elapsed().as_secs_f64()
}

/// Production-style loop over one partition's key range.
fn worker_loop(
    store: &dyn KvStore,
    part: usize,
    key_space: u64,
    seed: u64,
    stop: &AtomicBool,
) -> u64 {
    let part_len = key_space / PARTS as u64;
    let base = part as u64 * part_len;
    let zipf = Zipf::new(part_len, 0.99);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ops = 0u64;
    let mut salt = seed;
    while !stop.load(Ordering::Relaxed) {
        let rank = zipf.sample(&mut rng);
        // Scatter ranks within the partition.
        let idx = base + (rank.wrapping_mul(0x9e37_79b9_7f4a_7c15) % part_len);
        let key = format_key(idx, KEY_LEN);
        if rng.random_range(0..100u32) < READ_PCT {
            let _ = store.get(&key).expect("get");
        } else {
            salt = salt.wrapping_add(1);
            store.put(&key, &value_for(salt, VALUE_LEN)).expect("put");
        }
        ops += 1;
    }
    ops
}
