//! Figure 5 — write performance.
//!
//! "A 100% write scenario, with the keys uniformly distributed across
//! the domain." Produces both panels: (a) throughput vs worker
//! threads, (b) throughput vs 90th-percentile latency.
//!
//! Paper shape to look for: LevelDB/bLSM/RocksDB flat-or-declining
//! (single-writer), HyperLevelDB peaking around 4 threads, cLSM scaling
//! furthest and highest (≈1.8× the best competitor at peak).

use bench::driver::{emit, sweep_threads, Metric};
use bench::systems::all_systems;
use clsm_workloads::WorkloadSpec;

fn main() {
    let args = bench::parse_args();
    let spec = WorkloadSpec::write_only(args.key_space());
    let tables = sweep_threads(
        &args,
        "Figure 5 (write-only)",
        all_systems(),
        &spec,
        &[
            (Metric::KopsPerSec, "Write throughput (Kops/s) [Fig 5a]"),
            (
                Metric::P90LatencyUs,
                "90th percentile latency (us) [Fig 5b]",
            ),
        ],
    )
    .expect("benchmark failed");
    emit(&args, &tables).expect("emit failed");
}
