//! The registry of systems under test.
//!
//! Each evaluated system is a [`System`] trait object pairing a display
//! name with the recipe for opening an instance; benchmarks iterate
//! over `&'static dyn System` slices instead of matching on an enum, so
//! adding a system means adding one impl and one registry entry —
//! no central dispatch to edit.

use std::path::Path;
use std::sync::Arc;

use clsm::{Db, Options, ShardedDb};
use clsm_baselines::{BlsmLike, HyperLike, KvStore, LevelDbLike, RocksLike, StripedRmw};
use clsm_util::error::Result;

/// One system under test: a stable display name plus an opener.
pub trait System: Send + Sync {
    /// Display name used in tables (matches the paper's legends).
    fn name(&self) -> &'static str;

    /// Opens an instance at `dir` with shared options.
    fn open(&self, dir: &Path, opts: Options) -> Result<Arc<dyn KvStore>>;
}

macro_rules! declare_system {
    ($ty:ident, $static_name:ident, $label:literal, $store:ty) => {
        struct $ty;

        impl System for $ty {
            fn name(&self) -> &'static str {
                $label
            }

            fn open(&self, dir: &Path, opts: Options) -> Result<Arc<dyn KvStore>> {
                Ok(Arc::new(<$store>::open(dir, opts)?))
            }
        }

        /// The registry entry for this system.
        pub static $static_name: &dyn System = &$ty;
    };
}

declare_system!(ClsmSystem, CLSM, "cLSM", Db);
declare_system!(ClsmShardedSystem, CLSM_SHARDED, "cLSM-sharded", ShardedDb);

/// The cLSM store behind an embedded loopback `clsm-server`, accessed
/// through the pipelined TCP client: every measurement through this
/// system is client-observed over the wire. The
/// [`clsm_net::RemoteStore`] owns the server handle, so the server
/// lives exactly as long as the returned store.
struct ClsmNetSystem;

impl System for ClsmNetSystem {
    fn name(&self) -> &'static str {
        "cLSM-net"
    }

    fn open(&self, dir: &Path, opts: Options) -> Result<Arc<dyn KvStore>> {
        let db: Arc<dyn KvStore> = Arc::new(Db::open(dir, opts)?);
        let net = clsm_net::NetOptions::builder()
            .addr("127.0.0.1:0")
            .workers(2)
            .build()?;
        Ok(Arc::new(clsm_net::RemoteStore::with_embedded_server(
            db, &net,
        )?))
    }
}

/// The registry entry for the networked system.
pub static CLSM_NET: &dyn System = &ClsmNetSystem;
declare_system!(LevelDbSystem, LEVELDB, "LevelDB", LevelDbLike);
declare_system!(HyperSystem, HYPER, "HyperLevelDB", HyperLike);
declare_system!(RocksSystem, ROCKS, "rocksDB", RocksLike);
declare_system!(BlsmSystem, BLSM, "bLSM", BlsmLike);
declare_system!(StripedSystem, STRIPED, "LevelDB+striping", StripedRmw);

/// The standard five-way comparison set (Figures 5–7).
pub fn all_systems() -> &'static [&'static dyn System] {
    static ALL: [&dyn System; 5] = [
        &RocksSystem,
        &BlsmSystem,
        &LevelDbSystem,
        &HyperSystem,
        &ClsmSystem,
    ];
    &ALL
}

/// The four-way set used where bLSM is excluded (scans, production).
pub fn no_blsm_systems() -> &'static [&'static dyn System] {
    static SET: [&dyn System; 4] = [&RocksSystem, &LevelDbSystem, &HyperSystem, &ClsmSystem];
    &SET
}

/// Every registered system, including ones outside the standard
/// comparison sets.
pub fn registry() -> &'static [&'static dyn System] {
    static ALL: [&dyn System; 8] = [
        &RocksSystem,
        &BlsmSystem,
        &LevelDbSystem,
        &HyperSystem,
        &ClsmSystem,
        &ClsmShardedSystem,
        &ClsmNetSystem,
        &StripedSystem,
    ];
    &ALL
}

/// Looks a system up by its display name (case-insensitive).
pub fn system_by_name(name: &str) -> Option<&'static dyn System> {
    registry()
        .iter()
        .copied()
        .find(|s| s.name().eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_system_opens_and_serves() {
        for sys in registry() {
            let dir = std::env::temp_dir().join(format!(
                "bench-sys-{}-{}-{}",
                std::process::id(),
                std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .unwrap()
                    .as_nanos(),
                sys.name()
                    .replace(|c: char| !c.is_ascii_alphanumeric(), "_")
            ));
            std::fs::create_dir_all(&dir).unwrap();
            let store = sys.open(&dir, Options::small_for_tests()).unwrap();
            store.put(b"k", b"v").unwrap();
            assert_eq!(store.get(b"k").unwrap(), Some(b"v".to_vec()));
            drop(store);
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn lookup_by_name_is_case_insensitive() {
        assert_eq!(system_by_name("clsm").unwrap().name(), "cLSM");
        assert_eq!(system_by_name("clsm-net").unwrap().name(), "cLSM-net");
        assert_eq!(system_by_name("LEVELDB").unwrap().name(), "LevelDB");
        assert!(system_by_name("nonexistent").is_none());
    }
}
