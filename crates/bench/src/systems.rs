//! Construction of the systems under test.

use std::path::Path;
use std::sync::Arc;

use clsm::{Db, Options};
use clsm_baselines::{BlsmLike, HyperLike, KvStore, LevelDbLike, RocksLike, StripedRmw};
use clsm_util::error::Result;

/// The systems the paper evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemKind {
    /// This paper's contribution.
    Clsm,
    /// LevelDB model (global lock, single writer).
    LevelDb,
    /// HyperLevelDB model (fine-grained, ordered commit).
    Hyper,
    /// RocksDB model (single writer, lock-free reads).
    Rocks,
    /// bLSM model (single writer, gear-throttled merges).
    Blsm,
    /// Lock-striped RMW over the LevelDB model (Figure 9 baseline).
    Striped,
}

impl SystemKind {
    /// Display name used in tables (matches the paper's legends).
    pub fn name(&self) -> &'static str {
        match self {
            SystemKind::Clsm => "cLSM",
            SystemKind::LevelDb => "LevelDB",
            SystemKind::Hyper => "HyperLevelDB",
            SystemKind::Rocks => "rocksDB",
            SystemKind::Blsm => "bLSM",
            SystemKind::Striped => "LevelDB+striping",
        }
    }

    /// The standard five-way comparison set (Figures 5–7).
    pub fn all() -> &'static [SystemKind] {
        &[
            SystemKind::Rocks,
            SystemKind::Blsm,
            SystemKind::LevelDb,
            SystemKind::Hyper,
            SystemKind::Clsm,
        ]
    }

    /// The four-way set used where bLSM is excluded (scans, production).
    pub fn no_blsm() -> &'static [SystemKind] {
        &[
            SystemKind::Rocks,
            SystemKind::LevelDb,
            SystemKind::Hyper,
            SystemKind::Clsm,
        ]
    }
}

/// Opens a system of `kind` at `dir` with shared options.
pub fn open_system(kind: SystemKind, dir: &Path, opts: Options) -> Result<Arc<dyn KvStore>> {
    Ok(match kind {
        SystemKind::Clsm => Arc::new(Db::open(dir, opts)?),
        SystemKind::LevelDb => Arc::new(LevelDbLike::open(dir, opts)?),
        SystemKind::Hyper => Arc::new(HyperLike::open(dir, opts)?),
        SystemKind::Rocks => Arc::new(RocksLike::open(dir, opts)?),
        SystemKind::Blsm => Arc::new(BlsmLike::open(dir, opts)?),
        SystemKind::Striped => Arc::new(StripedRmw::open(dir, opts)?),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_system_opens_and_serves() {
        for kind in [
            SystemKind::Clsm,
            SystemKind::LevelDb,
            SystemKind::Hyper,
            SystemKind::Rocks,
            SystemKind::Blsm,
            SystemKind::Striped,
        ] {
            let dir = std::env::temp_dir().join(format!(
                "bench-sys-{}-{}-{:?}",
                std::process::id(),
                std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .unwrap()
                    .as_nanos(),
                kind
            ));
            std::fs::create_dir_all(&dir).unwrap();
            let store = open_system(kind, &dir, Options::small_for_tests()).unwrap();
            store.put(b"k", b"v").unwrap();
            assert_eq!(store.get(b"k").unwrap(), Some(b"v".to_vec()));
            drop(store);
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }
}
