//! Tabular output: aligned console tables plus CSV artifacts.

use std::io::Write;
use std::path::{Path, PathBuf};

use clsm_util::error::Result;

/// A simple column-aligned table keyed by (row, column).
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    x_label: String,
    columns: Vec<String>,
    rows: Vec<(String, Vec<Option<f64>>)>,
}

impl Table {
    /// Creates a table: `columns` are the x-axis points.
    pub fn new(title: &str, x_label: &str, columns: Vec<String>) -> Table {
        Table {
            title: title.to_string(),
            x_label: x_label.to_string(),
            columns,
            rows: Vec::new(),
        }
    }

    /// Adds an empty series row.
    pub fn add_row(&mut self, name: &str) {
        self.rows
            .push((name.to_string(), vec![None; self.columns.len()]));
    }

    /// Sets the cell of series `row` at column index `col`.
    pub fn set(&mut self, row: &str, col: usize, value: f64) {
        if let Some((_, cells)) = self.rows.iter_mut().find(|(n, _)| n == row) {
            cells[col] = Some(value);
        } else {
            let mut cells = vec![None; self.columns.len()];
            cells[col] = Some(value);
            self.rows.push((row.to_string(), cells));
        }
    }

    /// Renders the aligned console table.
    pub fn render(&self) -> String {
        let name_w = self
            .rows
            .iter()
            .map(|(n, _)| n.len())
            .chain([self.x_label.len()])
            .max()
            .unwrap_or(8)
            .max(8);
        let col_w = self
            .columns
            .iter()
            .map(String::len)
            .max()
            .unwrap_or(8)
            .max(8)
            + 2;
        let mut out = String::new();
        out.push_str(&format!("# {}\n", self.title));
        out.push_str(&format!("{:<name_w$}", self.x_label));
        for c in &self.columns {
            out.push_str(&format!("{c:>col_w$}"));
        }
        out.push('\n');
        for (name, cells) in &self.rows {
            out.push_str(&format!("{name:<name_w$}"));
            for cell in cells {
                match cell {
                    Some(v) => out.push_str(&format!("{:>col_w$}", format_value(*v))),
                    None => out.push_str(&format!("{:>col_w$}", "-")),
                }
            }
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        println!("\n{}", self.render());
    }

    /// Writes the table as CSV into `dir/<slug>.csv`.
    pub fn to_csv(&self, dir: &Path) -> Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let mut slug = String::new();
        for c in self.title.chars() {
            if c.is_alphanumeric() {
                slug.push(c.to_ascii_lowercase());
            } else if !slug.ends_with('_') {
                slug.push('_');
            }
        }
        let path = dir.join(format!("{}.csv", slug.trim_matches('_')));
        let mut f = std::fs::File::create(&path)?;
        write!(f, "{}", self.x_label)?;
        for c in &self.columns {
            write!(f, ",{c}")?;
        }
        writeln!(f)?;
        for (name, cells) in &self.rows {
            write!(f, "{name}")?;
            for cell in cells {
                match cell {
                    Some(v) => write!(f, ",{v}")?,
                    None => write!(f, ",")?,
                }
            }
            writeln!(f)?;
        }
        Ok(path)
    }
}

fn format_value(v: f64) -> String {
    if v >= 1000.0 {
        format!("{v:.0}")
    } else if v >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

/// Writes a metrics snapshot as a JSON artifact:
/// `dir/<name>.metrics.json`.
pub fn write_metrics_json(
    dir: &Path,
    name: &str,
    snapshot: &clsm_util::metrics::MetricsSnapshot,
) -> Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.metrics.json"));
    std::fs::write(&path, snapshot.to_json())?;
    Ok(path)
}

/// Renders the write-path attribution section for a metrics snapshot
/// (a `Db`'s own or a `ShardedDb`'s bucket-merged one), or `None` when
/// the snapshot carries no write-path data — baseline systems, or a
/// store that never wrote.
pub fn render_write_path(snapshot: &clsm_util::metrics::MetricsSnapshot) -> Option<String> {
    let report = clsm::WritePathReport::from_snapshot(snapshot);
    report.has_samples().then(|| report.render())
}

/// Writes raw `(x, series, value)` triples as CSV.
pub fn write_csv(path: &Path, header: &str, rows: &[String]) -> Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "{header}")?;
    for r in rows {
        writeln!(f, "{r}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("Demo", "threads", vec!["1".into(), "2".into(), "4".into()]);
        t.set("cLSM", 0, 41.5);
        t.set("cLSM", 2, 150.0);
        t.set("LevelDB", 1, 9000.0);
        let s = t.render();
        assert!(s.contains("# Demo"));
        assert!(s.contains("cLSM"));
        assert!(s.contains("41.5"));
        assert!(s.contains("9000"));
        assert!(s.contains('-')); // missing cells
                                  // All data lines have the same width.
        let lines: Vec<&str> = s.lines().skip(1).collect();
        assert!(lines.windows(2).all(|w| w[0].len() == w[1].len()));
    }

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join(format!("bench-csv-{}", std::process::id()));
        let mut t = Table::new("Fig 5a Write", "threads", vec!["1".into(), "2".into()]);
        t.set("cLSM", 0, 1.0);
        t.set("cLSM", 1, 2.0);
        let path = t.to_csv(&dir).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("threads,1,2"));
        assert!(content.contains("cLSM,1,2"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
