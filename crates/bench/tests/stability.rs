//! The stability cell end to end, including the admission kill-test:
//! disabling the slowdown ramp (the ablation shim) must reproduce the
//! watchdog-detected stall cliff under the stability workload, and
//! re-enabling it must make the hard stalls (mostly) vanish.

use std::path::PathBuf;
use std::time::Duration;

use bench::stability::{run_stability, StabilityConfig};
use bench::suite::SuiteReport;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("stability-{}-{}", std::process::id(), name));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Short windows so a couple of seconds yields a real series.
fn quick(admission: bool) -> StabilityConfig {
    let mut cfg = StabilityConfig::new(true, admission);
    cfg.seconds = 2.5;
    cfg.window = Duration::from_millis(500);
    cfg
}

#[test]
fn stability_cell_emits_time_series_and_summary() {
    let dir = scratch("series");
    let result = run_stability(&quick(true), &dir).unwrap();
    assert_eq!(result.id, "stability.write-100.t4.admission-on");
    assert!(result.admission);
    assert!(result.ops > 0);
    assert!(result.kops_per_sec > 0.0);
    assert!(
        result.throughput_kops.len() >= 3,
        "expected >=3 windows, got {:?}",
        result.throughput_kops
    );
    assert_eq!(result.throughput_kops.len(), result.p999_us.len());
    assert!(result.throughput_cv.is_finite() && result.throughput_cv >= 0.0);
    assert!((0.0..=1.0 + 1e-9).contains(&result.worst_window_frac));
    assert!(result.p999_max_us >= result.p999_us.iter().cloned().fold(0.0, f64::max));
    // The cell is sized to pressure the store: the ramp must have
    // actually charged delays (otherwise it measures nothing).
    assert!(result.delayed_writes > 0, "ramp never engaged");

    // The result round-trips through the versioned artifact.
    let mut report = SuiteReport {
        label: "t".into(),
        mode: "smoke".into(),
        seconds: 0.0,
        key_space: 0,
        env: bench::suite::EnvFingerprint::current(),
        cells: vec![],
        net: vec![],
        stability: vec![result],
    };
    let parsed = SuiteReport::from_json(&report.to_json()).unwrap();
    assert_eq!(parsed.stability, report.stability);
    report.stability.clear();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The kill-test: the shim that disables the slowdown ramp brings the
/// §5.3 cliff back — writers slam into the memtable-full stall and the
/// watchdog flags the episodes — while the ramp-enabled run absorbs
/// the same pressure as graduated delays with fewer hard stalls.
#[test]
fn admission_ablation_reproduces_watchdog_detected_cliff_stalls() {
    let dir = scratch("kill");
    let off = run_stability(&quick(false), &dir).unwrap();
    let on = run_stability(&quick(true), &dir).unwrap();

    // Ablation: the cliff is real and the watchdog saw it.
    assert!(
        off.hard_stalls > 0,
        "ablation never hit the stall cliff (hard_stalls=0)"
    );
    assert_eq!(off.write_stalls, off.hard_stalls);
    assert!(
        off.stall_events > 0,
        "watchdog missed the cliff ({} hard stalls)",
        off.hard_stalls
    );
    // The shim really disabled the ramp.
    assert_eq!(off.delayed_writes, 0);

    // Graduated admission turns the cliff into delays: fewer hard
    // stalls, and the ramp visibly engaged.
    assert!(on.delayed_writes > 0, "ramp never engaged");
    assert!(
        on.hard_stalls < off.hard_stalls,
        "ramp did not reduce hard stalls: on={} off={}",
        on.hard_stalls,
        off.hard_stalls
    );
    let _ = std::fs::remove_dir_all(&dir);
}
