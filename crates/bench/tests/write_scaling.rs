//! The write-scaling lock-in test: a write-only 1→8 thread sweep over
//! the suite configuration (memtable-resident store, group commit on,
//! striped WAL) must not lose throughput as writer threads are added.
//!
//! On a small CI box extra writers cannot make the store faster, so
//! the assertion is the suite's scaling gate: 4-thread throughput must
//! keep at least 0.9x of single-thread. The serialization bugs this
//! test exists to catch — a hot Active-set lock, a shared memtable
//! arena mutex, one global WAL queue — cost far more than 10% and fail
//! every attempt, so a best-of-3 retry absorbs scheduler noise without
//! masking a real collapse. The 8-thread point is measured and printed
//! for the record but never asserted.

use std::path::{Path, PathBuf};

use bench::suite::{run_cell, scaling_cells, SuiteConfig, SCALING_TOLERANCE};

fn scratch() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("write-scaling-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Runs the scaling cells once, returning `(threads, kops_per_sec)`.
fn sweep(cfg: &SuiteConfig, dir: &Path) -> Vec<(usize, f64)> {
    scaling_cells()
        .iter()
        .map(|spec| {
            let cell = run_cell(spec, cfg, dir).unwrap();
            (spec.threads, cell.kops_per_sec)
        })
        .collect()
}

fn point(curve: &[(usize, f64)], threads: usize) -> f64 {
    curve
        .iter()
        .find(|&&(t, _)| t == threads)
        .map(|&(_, k)| k)
        .unwrap()
}

#[test]
fn adding_writer_threads_does_not_lose_throughput() {
    let dir = scratch();
    let mut cfg = SuiteConfig::new(true, "write-scaling");
    cfg.seconds = 0.4;

    let mut failures = Vec::new();
    for attempt in 1..=3 {
        let curve = sweep(&cfg, &dir);
        let (t1, t4, t8) = (point(&curve, 1), point(&curve, 4), point(&curve, 8));
        eprintln!(
            "[write-scaling] attempt {attempt}: t1={t1:.1} t4={t4:.1} t8={t8:.1} kops/s \
             (t4/t1={:.2}, t8/t1={:.2})",
            t4 / t1,
            t8 / t1
        );
        if t4 >= SCALING_TOLERANCE * t1 {
            let _ = std::fs::remove_dir_all(&dir);
            return;
        }
        failures.push(curve);
    }
    let _ = std::fs::remove_dir_all(&dir);
    panic!(
        "4-thread write throughput stayed below {SCALING_TOLERANCE}x single-thread \
         across all attempts — the write path is serializing: {failures:?}"
    );
}
