//! Micro-benchmarks of the lock-free skip list (the cLSM memory
//! component) plus the ablation DESIGN.md calls out: the lock-free
//! list vs a mutex-guarded BTreeMap as the memtable structure.

use std::collections::BTreeMap;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use parking_lot::Mutex;

use clsm_skiplist::SkipList;

fn keys(n: u64) -> Vec<Vec<u8>> {
    (0..n)
        .map(|i| format!("key{:012}", i.wrapping_mul(0x9e3779b9) % n).into_bytes())
        .collect()
}

fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("skiplist/insert");
    for n in [1_000u64, 10_000] {
        group.throughput(Throughput::Elements(n));
        group.bench_with_input(BenchmarkId::new("lockfree", n), &n, |b, &n| {
            let ks = keys(n);
            b.iter_batched(
                SkipList::new,
                |list| {
                    for (i, k) in ks.iter().enumerate() {
                        list.insert(k, i as u64 + 1, Some(b"value-256-bytes"));
                    }
                    list
                },
                BatchSize::SmallInput,
            );
        });
        group.bench_with_input(BenchmarkId::new("mutex-btreemap", n), &n, |b, &n| {
            let ks = keys(n);
            b.iter_batched(
                || Mutex::new(BTreeMap::<(Vec<u8>, std::cmp::Reverse<u64>), Vec<u8>>::new()),
                |map| {
                    for (i, k) in ks.iter().enumerate() {
                        map.lock().insert(
                            (k.clone(), std::cmp::Reverse(i as u64 + 1)),
                            b"value-256-bytes".to_vec(),
                        );
                    }
                    map
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_get(c: &mut Criterion) {
    let mut group = c.benchmark_group("skiplist/get_latest");
    let n = 100_000u64;
    let list = SkipList::new();
    let ks = keys(n);
    for (i, k) in ks.iter().enumerate() {
        list.insert(k, i as u64 + 1, Some(b"v"));
    }
    group.throughput(Throughput::Elements(1));
    let mut i = 0usize;
    group.bench_function("hit", |b| {
        b.iter(|| {
            i = (i + 7919) % ks.len();
            std::hint::black_box(list.get_latest(&ks[i], u64::MAX))
        })
    });
    group.bench_function("miss", |b| {
        b.iter(|| std::hint::black_box(list.get_latest(b"zzz-not-there", u64::MAX)))
    });
    group.finish();
}

fn bench_concurrent_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("skiplist/concurrent-insert");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        let per = 20_000u64 / threads as u64;
        group.throughput(Throughput::Elements(per * threads as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let list = Arc::new(SkipList::new());
                    std::thread::scope(|scope| {
                        for t in 0..threads {
                            let list = Arc::clone(&list);
                            scope.spawn(move || {
                                for i in 0..per {
                                    let key = format!("t{t}-{i:08}");
                                    list.insert(key.as_bytes(), t as u64 * per + i + 1, Some(b"v"));
                                }
                            });
                        }
                    });
                    list
                })
            },
        );
    }
    group.finish();
}

fn bench_rmw_primitive(c: &mut Criterion) {
    let mut group = c.benchmark_group("skiplist/insert_if_latest");
    group.throughput(Throughput::Elements(1));
    group.bench_function("uncontended", |b| {
        let list = SkipList::new();
        let mut ts = 0u64;
        b.iter(|| {
            ts += 1;
            let expected = (ts > 1).then_some(ts - 1);
            list.insert_if_latest(b"hot", ts, Some(b"v"), expected)
                .unwrap();
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_insert,
    bench_get,
    bench_concurrent_insert,
    bench_rmw_primitive
);
criterion_main!(benches);
