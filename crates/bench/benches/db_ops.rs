//! End-to-end operation micro-benchmarks on the full cLSM database:
//! put, get (memtable hit / disk hit / miss), snapshot creation, and
//! RMW — the per-operation costs underlying the figure-level results.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use clsm::{Db, Options, RmwDecision};

fn temp_db(name: &str) -> (Db, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!(
        "bench-db-{}-{}-{}",
        std::process::id(),
        name,
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let opts = Options {
        memtable_bytes: 8 * 1024 * 1024,
        ..Options::default()
    };
    (Db::open(&dir, opts).unwrap(), dir)
}

fn bench_put(c: &mut Criterion) {
    let mut group = c.benchmark_group("db/put");
    group.throughput(Throughput::Elements(1));
    let (db, dir) = temp_db("put");
    let mut i = 0u64;
    group.bench_function("256B_async", |b| {
        b.iter(|| {
            i += 1;
            db.put(format!("key{:012}", i % 100_000).as_bytes(), &[0u8; 256])
                .unwrap();
        })
    });
    group.finish();
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

fn bench_get(c: &mut Criterion) {
    let mut group = c.benchmark_group("db/get");
    group.throughput(Throughput::Elements(1));
    let (db, dir) = temp_db("get");
    for i in 0..50_000u64 {
        db.put(format!("key{i:012}").as_bytes(), &[1u8; 256])
            .unwrap();
    }
    // Half the data to disk, half fresh in the memtable.
    db.compact_to_quiescence().unwrap();
    for i in 0..5_000u64 {
        db.put(format!("fresh{i:012}").as_bytes(), &[2u8; 256])
            .unwrap();
    }

    let mut i = 0u64;
    group.bench_function("memtable_hit", |b| {
        b.iter(|| {
            i = (i + 37) % 5_000;
            assert!(db
                .get(format!("fresh{i:012}").as_bytes())
                .unwrap()
                .is_some());
        })
    });
    let mut j = 0u64;
    group.bench_function("disk_hit_cached", |b| {
        b.iter(|| {
            j = (j + 7919) % 50_000;
            assert!(db.get(format!("key{j:012}").as_bytes()).unwrap().is_some());
        })
    });
    group.bench_function("miss_bloom_filtered", |b| {
        b.iter(|| assert!(db.get(b"zzz-never-written").unwrap().is_none()))
    });
    group.finish();
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

fn bench_snapshot(c: &mut Criterion) {
    let mut group = c.benchmark_group("db/snapshot");
    group.throughput(Throughput::Elements(1));
    let (db, dir) = temp_db("snap");
    for i in 0..10_000u64 {
        db.put(format!("key{i:012}").as_bytes(), &[1u8; 64])
            .unwrap();
    }
    group.bench_function("create_drop", |b| {
        b.iter(|| {
            let snap = db.snapshot().unwrap();
            std::hint::black_box(snap.timestamp());
        })
    });
    group.bench_function("range_scan_15_keys", |b| {
        let snap = db.snapshot().unwrap();
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 607) % 9_000;
            let start = format!("key{i:012}");
            let n = snap.range(start.as_bytes(), None).unwrap().take(15).count();
            assert!(n > 0);
        })
    });
    group.finish();
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

fn bench_rmw(c: &mut Criterion) {
    let mut group = c.benchmark_group("db/rmw");
    group.throughput(Throughput::Elements(1));
    let (db, dir) = temp_db("rmw");
    group.bench_function("counter_increment", |b| {
        b.iter(|| {
            db.read_modify_write(b"ctr", |cur| {
                let n = cur.map_or(0u64, |v| u64::from_le_bytes(v.try_into().unwrap()));
                RmwDecision::Update((n + 1).to_le_bytes().to_vec())
            })
            .unwrap()
        })
    });
    let mut i = 0u64;
    group.bench_function("put_if_absent_fresh_key", |b| {
        b.iter(|| {
            i += 1;
            db.put_if_absent(format!("pia{i:016}").as_bytes(), b"v")
                .unwrap()
        })
    });
    group.finish();
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_put, bench_get, bench_snapshot, bench_rmw);
criterion_main!(benches);
