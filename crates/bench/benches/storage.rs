//! Micro-benchmarks of the disk substrate: WAL append path, block
//! building/seeking, Bloom filters, and the RCU component-pointer load
//! ablation (RCU vs mutex-guarded pointer read).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use parking_lot::Mutex;

use clsm_util::bloom::BloomFilterPolicy;
use clsm_util::rcu::RcuCell;
use lsm_storage::format::{InternalKey, ValueKind, WriteRecord};
use lsm_storage::sstable::{Block, BlockBuilder};
use lsm_storage::wal::{LogQueue, LogWriter, SyncMode};

fn bench_wal_append(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage/wal_append");
    group.throughput(Throughput::Elements(1));
    let dir = std::env::temp_dir().join(format!("bench-wal-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let path = dir.join("bench.log");
    let queue = LogQueue::start(LogWriter::new(Box::new(
        std::fs::File::create(&path).unwrap(),
    )));
    let mut record = Vec::new();
    WriteRecord::put(1, b"key-of-16-bytes!".to_vec(), vec![0u8; 256]).encode_to(&mut record);
    group.bench_function("async_enqueue_256B", |b| {
        b.iter(|| queue.append(record.clone(), SyncMode::Async).unwrap())
    });
    queue.sync().unwrap();
    drop(queue);
    let _ = std::fs::remove_dir_all(&dir);
    group.finish();
}

fn bench_block(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage/block");
    let n = 200u32;
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("build_200_entries", |b| {
        b.iter(|| {
            let mut builder = BlockBuilder::default();
            for i in 0..n {
                let key = InternalKey::new(
                    format!("key{i:08}").as_bytes(),
                    i as u64 + 1,
                    ValueKind::Put,
                );
                builder.add(key.encoded(), &[7u8; 64]);
            }
            builder.finish()
        })
    });

    let mut builder = BlockBuilder::default();
    for i in 0..n {
        let key = InternalKey::new(
            format!("key{i:08}").as_bytes(),
            i as u64 + 1,
            ValueKind::Put,
        );
        builder.add(key.encoded(), &[7u8; 64]);
    }
    let block = Arc::new(Block::parse(builder.finish()).unwrap());
    group.throughput(Throughput::Elements(1));
    let mut i = 0u32;
    group.bench_function("seek", |b| {
        b.iter(|| {
            i = (i + 37) % n;
            let mut it = block.iter();
            it.seek_internal(format!("key{i:08}").as_bytes(), u64::MAX >> 1);
            assert!(it.is_valid());
        })
    });
    group.finish();
}

fn bench_bloom(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage/bloom");
    let policy = BloomFilterPolicy::new(10);
    let keys: Vec<Vec<u8>> = (0..10_000u32)
        .map(|i| format!("key{i:08}").into_bytes())
        .collect();
    let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
    group.throughput(Throughput::Elements(keys.len() as u64));
    group.bench_function("create_10k_keys", |b| {
        b.iter(|| policy.create_filter(&refs))
    });
    let filter = policy.create_filter(&refs);
    group.throughput(Throughput::Elements(1));
    group.bench_function("probe", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 7919) % keys.len();
            std::hint::black_box(policy.key_may_match(&keys[i], &filter))
        })
    });
    group.finish();
}

fn bench_component_pointer(c: &mut Criterion) {
    // Ablation: reading the global component pointers. cLSM's RCU load
    // (lock-free) vs a mutex-guarded Arc clone (what LevelDB does under
    // its global mutex).
    let mut group = c.benchmark_group("storage/component_ptr");
    group.throughput(Throughput::Elements(1));
    let rcu = RcuCell::new(Arc::new(42u64));
    group.bench_function("rcu_load", |b| b.iter(|| std::hint::black_box(rcu.load())));
    let locked = Mutex::new(Arc::new(42u64));
    group.bench_function("mutex_clone", |b| {
        b.iter(|| std::hint::black_box(Arc::clone(&locked.lock())))
    });
    for threads in [2usize, 4] {
        let per = 100_000u64;
        group.throughput(Throughput::Elements(per * threads as u64));
        group.bench_with_input(
            BenchmarkId::new("rcu_load_concurrent", threads),
            &threads,
            |b, &threads| {
                let rcu = RcuCell::new(Arc::new(7u64));
                b.iter(|| {
                    std::thread::scope(|scope| {
                        for _ in 0..threads {
                            let rcu = &rcu;
                            scope.spawn(move || {
                                for _ in 0..per {
                                    std::hint::black_box(rcu.load());
                                }
                            });
                        }
                    })
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("mutex_clone_concurrent", threads),
            &threads,
            |b, &threads| {
                let locked = Mutex::new(Arc::new(7u64));
                b.iter(|| {
                    std::thread::scope(|scope| {
                        for _ in 0..threads {
                            let locked = &locked;
                            scope.spawn(move || {
                                for _ in 0..per {
                                    std::hint::black_box(Arc::clone(&locked.lock()));
                                }
                            });
                        }
                    })
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_wal_append,
    bench_block,
    bench_bloom,
    bench_component_pointer
);
criterion_main!(benches);
