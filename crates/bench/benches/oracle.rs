//! Micro-benchmarks of the Algorithm 2 timestamp oracle: the per-put
//! overhead (`getTS` + publish), snapshot creation, and the cost of the
//! Active-set scan.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use clsm_util::oracle::{ActiveSet, TimestampOracle};

fn bench_get_ts(c: &mut Criterion) {
    let mut group = c.benchmark_group("oracle/get_ts_publish");
    group.throughput(Throughput::Elements(1));
    group.bench_function("single-thread", |b| {
        let oracle = TimestampOracle::default();
        b.iter(|| {
            let s = oracle.get_ts();
            oracle.publish(s);
        })
    });
    group.finish();
}

fn bench_get_snap(c: &mut Criterion) {
    let mut group = c.benchmark_group("oracle/get_snap");
    group.throughput(Throughput::Elements(1));
    for slots in [64usize, 256, 1024] {
        group.bench_with_input(BenchmarkId::new("slots", slots), &slots, |b, &slots| {
            let oracle = TimestampOracle::new(slots);
            // A little history so snapTime is nonzero.
            for _ in 0..100 {
                let s = oracle.get_ts();
                oracle.publish(s);
            }
            b.iter(|| std::hint::black_box(oracle.get_snap()))
        });
    }
    group.finish();
}

fn bench_active_set(c: &mut Criterion) {
    let mut group = c.benchmark_group("oracle/active_set");
    group.throughput(Throughput::Elements(1));
    group.bench_function("add_remove", |b| {
        let set = ActiveSet::new(256);
        let mut ts = 0u64;
        b.iter(|| {
            ts += 1;
            let ticket = set.add(ts);
            set.remove(ticket);
        })
    });
    group.bench_function("find_min_with_8_active", |b| {
        let set = ActiveSet::new(256);
        let tickets: Vec<_> = (1..=8u64).map(|t| set.add(t * 10)).collect();
        b.iter(|| std::hint::black_box(set.find_min()));
        for t in tickets {
            set.remove(t);
        }
    });
    group.finish();
}

fn bench_concurrent_writers(c: &mut Criterion) {
    let mut group = c.benchmark_group("oracle/concurrent_get_ts");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        let per = 50_000u64;
        group.throughput(Throughput::Elements(per * threads as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let oracle = TimestampOracle::new(256);
                    std::thread::scope(|scope| {
                        for _ in 0..threads {
                            let oracle = &oracle;
                            scope.spawn(move || {
                                for _ in 0..per {
                                    let s = oracle.get_ts();
                                    oracle.publish(s);
                                }
                            });
                        }
                    });
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_get_ts,
    bench_get_snap,
    bench_active_set,
    bench_concurrent_writers
);
criterion_main!(benches);
