//! Ablation from DESIGN.md: the custom writer-preferring
//! shared-exclusive lock (Algorithm 1's `Lock`) vs
//! `parking_lot::RwLock` and vs an uncontended mutex, on the pattern
//! cLSM exhibits — a storm of short shared sections with very rare
//! exclusive sections.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use parking_lot::{Mutex, RwLock};

use clsm_util::shared_lock::SharedExclusiveLock;

fn bench_shared_acquire(c: &mut Criterion) {
    let mut group = c.benchmark_group("shared_lock/shared_acquire");
    group.throughput(Throughput::Elements(1));
    group.bench_function("clsm-shared-exclusive", |b| {
        let lock = SharedExclusiveLock::new();
        b.iter(|| {
            let g = lock.lock_shared();
            std::hint::black_box(&g);
        })
    });
    group.bench_function("parking_lot-rwlock", |b| {
        let lock = RwLock::new(());
        b.iter(|| {
            let g = lock.read();
            std::hint::black_box(&g);
        })
    });
    group.bench_function("parking_lot-mutex", |b| {
        let lock = Mutex::new(());
        b.iter(|| {
            let g = lock.lock();
            std::hint::black_box(&g);
        })
    });
    group.finish();
}

fn bench_contended_shared(c: &mut Criterion) {
    let mut group = c.benchmark_group("shared_lock/contended_shared");
    group.sample_size(10);
    for threads in [2usize, 4] {
        let per = 100_000u64;
        group.throughput(Throughput::Elements(per * threads as u64));
        group.bench_with_input(
            BenchmarkId::new("clsm-shared-exclusive", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let lock = Arc::new(SharedExclusiveLock::new());
                    std::thread::scope(|scope| {
                        for _ in 0..threads {
                            let lock = Arc::clone(&lock);
                            scope.spawn(move || {
                                for _ in 0..per {
                                    let _g = lock.lock_shared();
                                }
                            });
                        }
                    });
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("global-mutex", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let lock = Arc::new(Mutex::new(()));
                    std::thread::scope(|scope| {
                        for _ in 0..threads {
                            let lock = Arc::clone(&lock);
                            scope.spawn(move || {
                                for _ in 0..per {
                                    let _g = lock.lock();
                                }
                            });
                        }
                    });
                })
            },
        );
    }
    group.finish();
}

fn bench_exclusive_with_readers(c: &mut Criterion) {
    // The merge-hook scenario: an exclusive acquire must drain readers
    // quickly (writer preference).
    let mut group = c.benchmark_group("shared_lock/exclusive_acquire");
    group.throughput(Throughput::Elements(1));
    group.bench_function("uncontended", |b| {
        let lock = SharedExclusiveLock::new();
        b.iter(|| {
            let g = lock.lock_exclusive();
            std::hint::black_box(&g);
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_shared_acquire,
    bench_contended_shared,
    bench_exclusive_with_readers
);
criterion_main!(benches);
