//! Conformance tests: every baseline must implement the same observable
//! KV semantics as cLSM, since the benchmarks attribute differences
//! purely to concurrency control.

use std::ops::Bound;
use std::sync::Arc;

use clsm::Options;
use clsm_baselines::{
    BlsmLike, HyperLike, KvStore, LevelDbLike, Partitioned, RocksLike, ScanRange, StripedRmw,
};
use clsm_kv::{WriteBatch, WriteOptions};

struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(name: &str) -> TempDir {
        let p = std::env::temp_dir().join(format!(
            "baseline-{}-{}-{}",
            std::process::id(),
            name,
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The shared semantic checklist.
fn exercise(store: &dyn KvStore) {
    // CRUD.
    assert_eq!(store.get(b"k").unwrap(), None);
    store.put(b"k", b"v1").unwrap();
    assert_eq!(store.get(b"k").unwrap(), Some(b"v1".to_vec()));
    store.put(b"k", b"v2").unwrap();
    assert_eq!(store.get(b"k").unwrap(), Some(b"v2".to_vec()));
    store.delete(b"k").unwrap();
    assert_eq!(store.get(b"k").unwrap(), None);

    // put_if_absent.
    assert!(store.put_if_absent(b"pia", b"one").unwrap());
    assert!(!store.put_if_absent(b"pia", b"two").unwrap());
    assert_eq!(store.get(b"pia").unwrap(), Some(b"one".to_vec()));

    // Bulk data through flushes.
    for i in 0..1500u32 {
        store
            .put(
                format!("bulk{i:06}").as_bytes(),
                format!("val{i}").as_bytes(),
            )
            .unwrap();
    }
    store.quiesce().unwrap();
    for i in (0..1500u32).step_by(137) {
        assert_eq!(
            store.get(format!("bulk{i:06}").as_bytes()).unwrap(),
            Some(format!("val{i}").into_bytes()),
            "{} bulk{i}",
            store.name()
        );
    }

    // Scans: ordered, bounded, and live-only.
    store.delete(b"bulk000100").unwrap();
    let got = store
        .scan(ScanRange::from_start(&b"bulk000098"[..]), 5)
        .unwrap();
    let keys: Vec<&[u8]> = got.iter().map(|(k, _)| k.as_slice()).collect();
    assert_eq!(
        keys,
        vec![
            &b"bulk000098"[..],
            b"bulk000099",
            b"bulk000101", // 100 deleted
            b"bulk000102",
            b"bulk000103",
        ],
        "{}",
        store.name()
    );

    // End-bounded ranges: a half-open range stops before its end key
    // even when the limit allows more, and an inclusive end includes it.
    let half_open = store
        .scan((b"bulk000098".to_vec()..b"bulk000102".to_vec()).into(), 100)
        .unwrap();
    let keys: Vec<&[u8]> = half_open.iter().map(|(k, _)| k.as_slice()).collect();
    assert_eq!(
        keys,
        vec![&b"bulk000098"[..], b"bulk000099", b"bulk000101"],
        "{}: half-open range",
        store.name()
    );
    let inclusive = store
        .scan(
            (b"bulk000098".to_vec()..=b"bulk000102".to_vec()).into(),
            100,
        )
        .unwrap();
    assert_eq!(
        inclusive.last().map(|(k, _)| k.as_slice()),
        Some(&b"bulk000102"[..]),
        "{}: inclusive range end",
        store.name()
    );

    // ScanRange edge cases. An inverted range (start past end) selects
    // nothing — it must return empty, not wrap or panic.
    let inverted = store
        .scan((b"bulk000200".to_vec()..b"bulk000100".to_vec()).into(), 100)
        .unwrap();
    assert!(
        inverted.is_empty(),
        "{}: inverted range returned {} entries",
        store.name(),
        inverted.len()
    );
    // `Excluded(k) .. Included(k)` pinches to the empty set: the start
    // normalizes to successor(k) (the PR 4 `start_key` rule), which
    // lies strictly past the only key the end would admit.
    let pinched = store
        .scan(
            ScanRange {
                start: Bound::Excluded(b"bulk000102".to_vec()),
                end: Bound::Included(b"bulk000102".to_vec()),
            },
            100,
        )
        .unwrap();
    assert!(
        pinched.is_empty(),
        "{}: Excluded(k)..=k must be empty",
        store.name()
    );
    // An excluded start skips its own key but nothing else.
    let excluded_start = store
        .scan(
            ScanRange {
                start: Bound::Excluded(b"bulk000098".to_vec()),
                end: Bound::Unbounded,
            },
            2,
        )
        .unwrap();
    let keys: Vec<&[u8]> = excluded_start.iter().map(|(k, _)| k.as_slice()).collect();
    assert_eq!(
        keys,
        vec![&b"bulk000099"[..], b"bulk000101"], // 100 deleted above
        "{}: excluded start",
        store.name()
    );
    // The unbounded-start mirror of `from_start`: an end-bounded range
    // beginning at the smallest key in the store.
    let head = store.scan((..=b"bulk000001".to_vec()).into(), 100).unwrap();
    let keys: Vec<&[u8]> = head.iter().map(|(k, _)| k.as_slice()).collect();
    assert_eq!(
        keys,
        vec![&b"bulk000000"[..], b"bulk000001"],
        "{}: unbounded start",
        store.name()
    );
    // A zero limit is a valid request for nothing.
    assert!(
        store.scan(ScanRange::all(), 0).unwrap().is_empty(),
        "{}: zero limit",
        store.name()
    );

    // Batched writes: puts and deletes land; atomicity is only
    // guaranteed by systems that override the default (cLSM).
    store
        .write(
            WriteBatch::from(
                &[
                    (b"batch-a".to_vec(), Some(b"1".to_vec())),
                    (b"batch-b".to_vec(), Some(b"2".to_vec())),
                    (b"batch-a".to_vec(), None),
                ][..],
            ),
            &WriteOptions::new(),
        )
        .unwrap();
    assert_eq!(store.get(b"batch-a").unwrap(), None, "{}", store.name());
    assert_eq!(
        store.get(b"batch-b").unwrap(),
        Some(b"2".to_vec()),
        "{}",
        store.name()
    );

    // Snapshots: a view taken now must not observe later writes.
    let snap = store.snapshot().unwrap();
    assert_eq!(snap.get(b"bulk000098").unwrap(), Some(b"val98".to_vec()));
    store.put(b"bulk000098", b"overwritten").unwrap();
    store.delete(b"bulk000099").unwrap();
    assert_eq!(
        snap.get(b"bulk000098").unwrap(),
        Some(b"val98".to_vec()),
        "{}: snapshot observed a later overwrite",
        store.name()
    );
    assert_eq!(
        snap.get(b"bulk000099").unwrap(),
        Some(b"val99".to_vec()),
        "{}: snapshot observed a later delete",
        store.name()
    );
    let snap_scan = snap
        .scan(ScanRange::from_start(&b"bulk000098"[..]), 2)
        .unwrap();
    assert_eq!(
        snap_scan,
        vec![
            (b"bulk000098".to_vec(), b"val98".to_vec()),
            (b"bulk000099".to_vec(), b"val99".to_vec()),
        ],
        "{}: snapshot scan not frozen at capture time",
        store.name()
    );
    drop(snap);
    // Restore the pre-snapshot state for the checks below.
    store.put(b"bulk000098", b"val98").unwrap();
    store.put(b"bulk000099", b"val99").unwrap();

    // Stats: always well-formed; renderers never panic. Systems
    // without a registry return an empty snapshot.
    let stats = store.stats();
    let json = stats.to_json();
    assert!(
        json.starts_with('{') && json.ends_with('}'),
        "{}",
        store.name()
    );
    let _ = stats.to_text();

    // Concurrency smoke: writers + readers.
    std::thread::scope(|scope| {
        for t in 0..3u32 {
            scope.spawn(move || {
                for i in 0..400u32 {
                    let key = format!("conc-{t}-{i:05}");
                    store.put(key.as_bytes(), key.as_bytes()).unwrap();
                    assert_eq!(store.get(key.as_bytes()).unwrap(), Some(key.into_bytes()));
                }
            });
        }
        scope.spawn(move || {
            for i in 0..2000u32 {
                let key = format!("bulk{:06}", (i * 7) % 1500);
                let _ = store.get(key.as_bytes()).unwrap();
            }
        });
    });
    for t in 0..3u32 {
        for i in (0..400u32).step_by(97) {
            let key = format!("conc-{t}-{i:05}");
            assert_eq!(
                store.get(key.as_bytes()).unwrap(),
                Some(key.clone().into_bytes()),
                "{} {key}",
                store.name()
            );
        }
    }
}

#[test]
fn leveldb_like_conforms() {
    let dir = TempDir::new("leveldb");
    let store = LevelDbLike::open(&dir.0, Options::small_for_tests()).unwrap();
    exercise(&store);
}

#[test]
fn hyper_like_conforms() {
    let dir = TempDir::new("hyper");
    let store = HyperLike::open(&dir.0, Options::small_for_tests()).unwrap();
    exercise(&store);
}

#[test]
fn rocks_like_conforms() {
    let dir = TempDir::new("rocks");
    let mut opts = Options::small_for_tests();
    opts.compaction_threads = 2; // the §5.3 configuration
    let store = RocksLike::open(&dir.0, opts).unwrap();
    exercise(&store);
}

#[test]
fn blsm_like_conforms() {
    let dir = TempDir::new("blsm");
    let store = BlsmLike::open(&dir.0, Options::small_for_tests()).unwrap();
    exercise(&store);
}

#[test]
fn striped_rmw_conforms() {
    let dir = TempDir::new("striped");
    let store = StripedRmw::open(&dir.0, Options::small_for_tests()).unwrap();
    exercise(&store);
}

#[test]
fn clsm_conforms_to_the_same_contract() {
    let dir = TempDir::new("clsm");
    let store = clsm::Db::open(&dir.0, Options::small_for_tests()).unwrap();
    exercise(&store);
}

#[test]
fn clsm_with_tiered_compaction_conforms() {
    let dir = TempDir::new("clsm-tiered");
    let mut opts = Options::small_for_tests();
    opts.store.compaction_policy = clsm::CompactionPolicyKind::Tiered;
    let store = clsm::Db::open(&dir.0, opts).unwrap();
    exercise(&store);
}

#[test]
fn clsm_with_hybrid_partial_compaction_conforms() {
    let dir = TempDir::new("clsm-hybrid");
    let mut opts = Options::small_for_tests();
    opts.store.compaction_policy = clsm::CompactionPolicyKind::HybridPartial;
    let store = clsm::Db::open(&dir.0, opts).unwrap();
    exercise(&store);
}

#[test]
fn clsm_with_io_rate_limit_conforms() {
    // A tight-but-livable budget: the whole checklist's write volume
    // fits in a few seconds of refill, so correctness is exercised
    // under real throttle waits.
    let dir = TempDir::new("clsm-ratelimited");
    let opts = clsm::OptionsBuilder::from_options(Options::small_for_tests())
        .io_rate_limit(4 << 20, 1 << 20)
        .build()
        .unwrap();
    let store = clsm::Db::open(&dir.0, opts).unwrap();
    exercise(&store);
}

#[test]
fn sharded_clsm_single_shard_conforms() {
    let dir = TempDir::new("sharded1");
    let store = clsm::ShardedDb::open(&dir.0, Options::small_for_tests()).unwrap();
    assert_eq!(store.num_shards(), 1);
    exercise(&store);
}

#[test]
fn sharded_clsm_four_shards_conforms() {
    // Letter boundaries scatter the suite's key families across all
    // four shards: "batch-"/"bulk" → 0, "conc-"/"k" → 1, "pia" → 2,
    // and the suite's scans cross the bulk/conc boundary.
    let dir = TempDir::new("sharded4");
    let store = clsm::ShardedDb::open_with_boundaries(
        &dir.0,
        Options::small_for_tests(),
        vec![b"c".to_vec(), b"m".to_vec(), b"t".to_vec()],
    )
    .unwrap();
    assert_eq!(store.num_shards(), 4);
    exercise(&store);
}

#[test]
fn partitioned_composition_conforms() {
    // The full checklist against the Figure-1 partitioned composition;
    // boundaries split the bulk range itself so stitched scans cross a
    // partition edge mid-family.
    let dirs: Vec<TempDir> = (0..4).map(|i| TempDir::new(&format!("pconf{i}"))).collect();
    let parts: Vec<LevelDbLike> = dirs
        .iter()
        .map(|d| LevelDbLike::open(&d.0, Options::small_for_tests()).unwrap())
        .collect();
    let store = Partitioned::new(
        parts,
        vec![b"bulk000500".to_vec(), b"conc-1".to_vec(), b"k".to_vec()],
    );
    exercise(&store);
}

#[test]
fn striped_rmw_increments_are_atomic() {
    let dir = TempDir::new("striped-inc");
    let store = Arc::new(StripedRmw::open(&dir.0, Options::small_for_tests()).unwrap());
    let threads = 4u64;
    let per = 400u64;
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let store = Arc::clone(&store);
            scope.spawn(move || {
                for _ in 0..per {
                    store
                        .rmw(b"ctr", |cur| {
                            let n = cur.map_or(0u64, |v| u64::from_le_bytes(v.try_into().unwrap()));
                            Some((n + 1).to_le_bytes().to_vec())
                        })
                        .unwrap();
                }
            });
        }
    });
    let v = store.get(b"ctr").unwrap().unwrap();
    assert_eq!(u64::from_le_bytes(v.try_into().unwrap()), threads * per);
}

#[test]
fn baselines_survive_reopen() {
    let dir = TempDir::new("reopen");
    {
        let store = LevelDbLike::open(&dir.0, Options::small_for_tests()).unwrap();
        store.put(b"persist", b"me").unwrap();
    }
    let store = LevelDbLike::open(&dir.0, Options::small_for_tests()).unwrap();
    assert_eq!(store.get(b"persist").unwrap(), Some(b"me".to_vec()));
}

#[test]
fn partitioned_routes_and_stitches() {
    let dirs: Vec<TempDir> = (0..4).map(|i| TempDir::new(&format!("part{i}"))).collect();
    let parts: Vec<LevelDbLike> = dirs
        .iter()
        .map(|d| LevelDbLike::open(&d.0, Options::small_for_tests()).unwrap())
        .collect();
    let store = Partitioned::new(parts, vec![b"g".to_vec(), b"n".to_vec(), b"t".to_vec()]);
    assert_eq!(store.partition_of(b"apple"), 0);
    assert_eq!(store.partition_of(b"g"), 1);
    assert_eq!(store.partition_of(b"monkey"), 1);
    assert_eq!(store.partition_of(b"night"), 2);
    assert_eq!(store.partition_of(b"zebra"), 3);

    for key in [
        "apple", "grape", "night", "zebra", "fig", "melon", "swan", "yak",
    ] {
        store.put(key.as_bytes(), key.as_bytes()).unwrap();
    }
    for key in [
        "apple", "grape", "night", "zebra", "fig", "melon", "swan", "yak",
    ] {
        assert_eq!(
            store.get(key.as_bytes()).unwrap(),
            Some(key.as_bytes().to_vec())
        );
    }
    // Cross-partition scan stitches all four shards in order.
    let all = store.scan(ScanRange::all(), 100).unwrap();
    let keys: Vec<String> = all
        .iter()
        .map(|(k, _)| String::from_utf8(k.clone()).unwrap())
        .collect();
    assert_eq!(
        keys,
        vec!["apple", "fig", "grape", "melon", "night", "swan", "yak", "zebra"]
    );
    // Bounded cross-partition scan.
    let some = store.scan(ScanRange::from_start(&b"f"[..]), 3).unwrap();
    assert_eq!(some.len(), 3);
    assert_eq!(some[0].0, b"fig");
}

#[test]
fn partitioned_clsm_composition_conforms() {
    // Figure 1 also needs cLSM to compose under partitioning (the
    // paper argues AGAINST it, but the mechanism must still work).
    let dirs: Vec<TempDir> = (0..2).map(|i| TempDir::new(&format!("pclsm{i}"))).collect();
    let parts: Vec<clsm::Db> = dirs
        .iter()
        .map(|d| clsm::Db::open(&d.0, Options::small_for_tests()).unwrap())
        .collect();
    let store = Partitioned::new(parts, vec![b"m".to_vec()]);
    for key in ["alpha", "zulu", "mike", "lima"] {
        store.put(key.as_bytes(), key.as_bytes()).unwrap();
    }
    assert_eq!(store.get(b"alpha").unwrap(), Some(b"alpha".to_vec()));
    assert_eq!(store.get(b"zulu").unwrap(), Some(b"zulu".to_vec()));
    let all: Vec<String> = store
        .scan(ScanRange::all(), 10)
        .unwrap()
        .into_iter()
        .map(|(k, _)| String::from_utf8(k).unwrap())
        .collect();
    assert_eq!(all, vec!["alpha", "lima", "mike", "zulu"]);
    assert!(!store.put_if_absent(b"alpha", b"x").unwrap());
    store.quiesce().unwrap();
}
