//! RocksDB's (2014-era) concurrency model: single writer queue,
//! lock-free reads, multi-threaded compaction.
//!
//! "Much effort is done in order to reduce critical sections in the
//! memory component … readers avoid locks by caching metadata in their
//! thread local storage" (§6), while writes still funnel through a
//! single-writer queue with group commit. Configure
//! `Options::compaction_threads > 1` to reproduce the §5.3 setup where
//! "the merge process of disk components is executed by multiple
//! threads concurrently".

use std::path::Path;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::Mutex;

use clsm::Options;
use clsm_util::error::Result;

use crate::common::{
    KvSnapshot, KvStore, RmwDecision, RmwResult, ScanRange, WriteBatch, WriteOptions,
};
use crate::core::BaselineCore;

/// A RocksDB-style store: serialized writes, lock-free reads.
pub struct RocksLike {
    core: Arc<BaselineCore>,
    /// The writers queue (we model the leader/follower group-commit
    /// protocol as one mutex: same serialization, simpler mechanics).
    writer_queue: Mutex<()>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl RocksLike {
    /// Opens (or creates) a store at `path`.
    pub fn open(path: &Path, opts: Options) -> Result<RocksLike> {
        let (core, workers) = BaselineCore::open(path, &opts)?;
        Ok(RocksLike {
            core,
            writer_queue: Mutex::new(()),
            workers: Mutex::new(workers),
        })
    }

    fn write_one(&self, key: &[u8], value: Option<&[u8]>) -> Result<()> {
        self.core.stall_if_needed();
        {
            let _g = self.writer_queue.lock();
            let seq = self.core.next_seq.fetch_add(1, Ordering::SeqCst) + 1;
            self.core.apply_write(key, value, seq)?;
            self.core.publish(seq);
        }
        self.core.maybe_sync()?;
        self.core.maybe_schedule_flush();
        Ok(())
    }
}

impl KvStore for RocksLike {
    fn write(&self, batch: WriteBatch, opts: &WriteOptions) -> Result<()> {
        // Writes funnel through the writer queue one at a time;
        // `disable_wal` is ignored (baselines always log).
        opts.validate()?;
        for (key, value) in batch.iter() {
            self.write_one(key, value.as_deref())?;
        }
        self.core.sync_if_requested(opts)
    }

    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        // Lock-free read: the visible sequence and the super-version
        // (our RCU component pointers) are read without any mutex.
        self.core.get_at(key, self.core.visible())
    }

    fn snapshot(&self) -> Result<Box<dyn KvSnapshot>> {
        Ok(self.core.snapshot_at(self.core.visible()))
    }

    fn scan(&self, range: ScanRange, limit: usize) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        self.core.scan_at(&range, limit, self.core.visible())
    }

    fn put_if_absent(&self, key: &[u8], value: &[u8]) -> Result<bool> {
        self.core.stall_if_needed();
        let stored = {
            let _g = self.writer_queue.lock();
            if self.core.get_at(key, self.core.visible())?.is_some() {
                false
            } else {
                let seq = self.core.next_seq.fetch_add(1, Ordering::SeqCst) + 1;
                self.core.apply_write(key, Some(value), seq)?;
                self.core.publish(seq);
                true
            }
        };
        self.core.maybe_sync()?;
        self.core.maybe_schedule_flush();
        Ok(stored)
    }

    fn read_modify_write(
        &self,
        key: &[u8],
        f: &mut dyn FnMut(Option<&[u8]>) -> RmwDecision,
    ) -> Result<RmwResult> {
        // Modeled on RocksDB's merge-operator discipline: the whole
        // read-decide-write runs inside the writer queue.
        self.core.stall_if_needed();
        let result = {
            let _g = self.writer_queue.lock();
            let current = self.core.get_at(key, self.core.visible())?;
            match f(current.as_deref()) {
                RmwDecision::Abort => RmwResult {
                    committed: false,
                    previous: current,
                },
                decision => {
                    let value = match &decision {
                        RmwDecision::Update(v) => Some(v.as_slice()),
                        _ => None,
                    };
                    let seq = self.core.next_seq.fetch_add(1, Ordering::SeqCst) + 1;
                    self.core.apply_write(key, value, seq)?;
                    self.core.publish(seq);
                    RmwResult {
                        committed: true,
                        previous: current,
                    }
                }
            }
        };
        self.core.maybe_sync()?;
        self.core.maybe_schedule_flush();
        Ok(result)
    }

    fn quiesce(&self) -> Result<()> {
        self.core.quiesce()
    }

    fn name(&self) -> &'static str {
        "RocksDB"
    }

    fn write_amp(&self) -> Option<lsm_storage::store::WriteAmp> {
        Some(self.core.write_amp())
    }
}

impl Drop for RocksLike {
    fn drop(&mut self) {
        self.core.shutdown_and_join(&mut self.workers.lock());
    }
}
