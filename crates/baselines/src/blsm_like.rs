//! bLSM's concurrency model: single writer with a spring-and-gear
//! merge scheduler.
//!
//! bLSM is "a single-writer prototype that capitalizes on careful
//! scheduling of merges" (§5): instead of letting the memtable fill and
//! then stalling writes hard, its merge scheduler *throttles* writers
//! smoothly so the merge keeps pace ("bounds the time a merge can block
//! write operations", §6). We model that as a per-write delay that
//! grows with the memtable fill fraction once flushing falls behind.

use std::path::Path;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;

use clsm::Options;
use clsm_util::error::Result;

use crate::common::{
    KvSnapshot, KvStore, RmwDecision, RmwResult, ScanRange, WriteBatch, WriteOptions,
};
use crate::core::BaselineCore;

/// A bLSM-style store: single writer, gear-throttled against merges.
pub struct BlsmLike {
    core: Arc<BaselineCore>,
    global: Mutex<()>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl BlsmLike {
    /// Opens (or creates) a store at `path`.
    pub fn open(path: &Path, opts: Options) -> Result<BlsmLike> {
        let (core, workers) = BaselineCore::open(path, &opts)?;
        Ok(BlsmLike {
            core,
            global: Mutex::new(()),
            workers: Mutex::new(workers),
        })
    }

    /// Spring-and-gear: no delay below 70% fill; once the memtable
    /// outpaces the merge, delay writes proportionally instead of
    /// letting them hit the hard stall.
    fn gear_throttle(&self) {
        let fill = self.core.fill_fraction();
        if fill > 0.7 {
            let over = (fill - 0.7) / 0.3;
            let micros = (over.clamp(0.0, 1.0) * 200.0) as u64;
            if micros > 0 {
                std::thread::sleep(Duration::from_micros(micros));
            }
        }
    }

    fn write_one(&self, key: &[u8], value: Option<&[u8]>) -> Result<()> {
        self.gear_throttle();
        self.core.stall_if_needed();
        {
            let _g = self.global.lock();
            let seq = self.core.next_seq.fetch_add(1, Ordering::SeqCst) + 1;
            self.core.apply_write(key, value, seq)?;
            self.core.publish(seq);
        }
        self.core.maybe_sync()?;
        self.core.maybe_schedule_flush();
        Ok(())
    }
}

impl KvStore for BlsmLike {
    fn write(&self, batch: WriteBatch, opts: &WriteOptions) -> Result<()> {
        // Single-writer, gear-throttled per operation; `disable_wal`
        // is ignored (baselines always log).
        opts.validate()?;
        for (key, value) in batch.iter() {
            self.write_one(key, value.as_deref())?;
        }
        self.core.sync_if_requested(opts)
    }

    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        // Single-writer design: reads synchronize like LevelDB's.
        let seq = {
            let _g = self.global.lock();
            self.core.visible()
        };
        self.core.get_at(key, seq)
    }

    fn snapshot(&self) -> Result<Box<dyn KvSnapshot>> {
        Ok(self.core.snapshot_at(self.core.visible()))
    }

    fn scan(&self, range: ScanRange, limit: usize) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        // bLSM "does not directly support consistent scans" (§5.1); we
        // provide a best-effort scan at the current visible sequence so
        // the trait is total, but benchmarks exclude it as the paper
        // does.
        let seq = self.core.visible();
        self.core.scan_at(&range, limit, seq)
    }

    fn put_if_absent(&self, key: &[u8], value: &[u8]) -> Result<bool> {
        self.gear_throttle();
        self.core.stall_if_needed();
        let stored = {
            let _g = self.global.lock();
            if self.core.get_at(key, self.core.visible())?.is_some() {
                false
            } else {
                let seq = self.core.next_seq.fetch_add(1, Ordering::SeqCst) + 1;
                self.core.apply_write(key, Some(value), seq)?;
                self.core.publish(seq);
                true
            }
        };
        self.core.maybe_sync()?;
        self.core.maybe_schedule_flush();
        Ok(stored)
    }

    fn read_modify_write(
        &self,
        key: &[u8],
        f: &mut dyn FnMut(Option<&[u8]>) -> RmwDecision,
    ) -> Result<RmwResult> {
        // Single-writer design: the whole read-decide-write holds the
        // global mutex, same as every other write.
        self.gear_throttle();
        self.core.stall_if_needed();
        let result = {
            let _g = self.global.lock();
            let current = self.core.get_at(key, self.core.visible())?;
            match f(current.as_deref()) {
                RmwDecision::Abort => RmwResult {
                    committed: false,
                    previous: current,
                },
                decision => {
                    let value = match &decision {
                        RmwDecision::Update(v) => Some(v.as_slice()),
                        _ => None,
                    };
                    let seq = self.core.next_seq.fetch_add(1, Ordering::SeqCst) + 1;
                    self.core.apply_write(key, value, seq)?;
                    self.core.publish(seq);
                    RmwResult {
                        committed: true,
                        previous: current,
                    }
                }
            }
        };
        self.core.maybe_sync()?;
        self.core.maybe_schedule_flush();
        Ok(result)
    }

    fn quiesce(&self) -> Result<()> {
        self.core.quiesce()
    }

    fn name(&self) -> &'static str {
        "bLSM"
    }

    fn write_amp(&self) -> Option<lsm_storage::store::WriteAmp> {
        Some(self.core.write_amp())
    }
}

impl Drop for BlsmLike {
    fn drop(&mut self) {
        self.core.shutdown_and_join(&mut self.workers.lock());
    }
}
