//! HyperLevelDB's concurrency model: fine-grained locking with
//! in-order commit.
//!
//! HyperLevelDB "improves on LevelDB … by using fine-grained locking to
//! increase concurrency" (§6). Writers overlap on the memtable insert,
//! but each write becomes visible in sequence order: a writer spins
//! until every earlier sequence number has committed. That pipeline
//! scales for a few threads and then degrades — the behavior Figure 5
//! measures (peaks around 4 threads).

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::Mutex;

use clsm::Options;
use clsm_util::error::Result;

use crate::common::{KvSnapshot, KvStore, ScanRange, WriteBatch, WriteOptions};
use crate::core::BaselineCore;

/// A HyperLevelDB-style store: parallel inserts, ordered commit.
pub struct HyperLike {
    core: Arc<BaselineCore>,
    /// Highest sequence number whose writer finished committing; a
    /// writer with sequence `s` waits for `s - 1`.
    committed: AtomicU64,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl HyperLike {
    /// Opens (or creates) a store at `path`.
    pub fn open(path: &Path, opts: Options) -> Result<HyperLike> {
        let (core, workers) = BaselineCore::open(path, &opts)?;
        let committed = AtomicU64::new(core.visible());
        Ok(HyperLike {
            core,
            committed,
            workers: Mutex::new(workers),
        })
    }

    fn write_one(&self, key: &[u8], value: Option<&[u8]>) -> Result<()> {
        self.core.stall_if_needed();
        let seq = self.core.next_seq.fetch_add(1, Ordering::SeqCst) + 1;
        // The insert itself runs in parallel with other writers.
        let applied = self.core.apply_write(key, value, seq);
        // Ordered commit: wait for all earlier writers, then publish.
        // The counter advances even on error, or later writers would
        // spin forever behind a failed sequence number.
        let mut spins = 0u32;
        while self.committed.load(Ordering::Acquire) != seq - 1 {
            if spins < 64 {
                spins += 1;
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        if applied.is_ok() {
            self.core.publish(seq);
        }
        self.committed.store(seq, Ordering::Release);
        applied?;
        self.core.maybe_sync()?;
        self.core.maybe_schedule_flush();
        Ok(())
    }
}

impl KvStore for HyperLike {
    fn write(&self, batch: WriteBatch, opts: &WriteOptions) -> Result<()> {
        // Each operation rides the ordered-commit pipeline on its own;
        // `disable_wal` is ignored (baselines always log).
        opts.validate()?;
        for (key, value) in batch.iter() {
            self.write_one(key, value.as_deref())?;
        }
        self.core.sync_if_requested(opts)
    }

    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        // Reads briefly synchronize on the commit counter (analogous to
        // LevelDB's brief mutex hold, but cheaper).
        let seq = self.committed.load(Ordering::Acquire);
        self.core.get_at(key, seq)
    }

    fn snapshot(&self) -> Result<Box<dyn KvSnapshot>> {
        Ok(self
            .core
            .snapshot_at(self.committed.load(Ordering::Acquire)))
    }

    fn scan(&self, range: ScanRange, limit: usize) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let seq = self.committed.load(Ordering::Acquire);
        self.core.scan_at(&range, limit, seq)
    }

    fn put_if_absent(&self, key: &[u8], value: &[u8]) -> Result<bool> {
        // HyperLevelDB has no native RMW; emulate with a writer-side
        // critical section over the commit counter (coarse).
        self.core.stall_if_needed();
        let seq = self.committed.load(Ordering::Acquire);
        if self.core.get_at(key, seq)?.is_some() {
            return Ok(false);
        }
        self.write_one(key, Some(value))?;
        Ok(true)
    }

    fn quiesce(&self) -> Result<()> {
        self.core.quiesce()
    }

    fn name(&self) -> &'static str {
        "HyperLevelDB"
    }

    fn write_amp(&self) -> Option<lsm_storage::store::WriteAmp> {
        Some(self.core.write_amp())
    }
}

impl Drop for HyperLike {
    fn drop(&mut self) {
        self.core.shutdown_and_join(&mut self.workers.lock());
    }
}
