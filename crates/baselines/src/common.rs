//! The uniform store interface, re-exported from [`clsm_kv`].
//!
//! The trait used to live here; it moved to its own crate so that
//! `clsm` can implement it for `Db` without a dependency cycle. This
//! module remains so existing `crate::common::KvStore` paths (and the
//! public `clsm_baselines::KvStore` re-export) keep working.

pub use clsm_kv::{
    KvSnapshot, KvStore, RmwDecision, RmwResult, ScanRange, WriteBatch, WriteOptions,
};
