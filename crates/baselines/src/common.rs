//! The uniform store interface used by workloads and benchmarks.

use clsm_util::error::Result;

/// The operations every evaluated system supports.
///
/// `scan` corresponds to the paper's range queries (Figure 7b);
/// `put_if_absent` to the RMW benchmark (Figure 9).
pub trait KvStore: Send + Sync {
    /// Stores `value` under `key`.
    fn put(&self, key: &[u8], value: &[u8]) -> Result<()>;

    /// Returns the latest value of `key`.
    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>>;

    /// Deletes `key`.
    fn delete(&self, key: &[u8]) -> Result<()>;

    /// Returns up to `limit` live pairs with keys `>= start`, in order,
    /// from a consistent view.
    fn scan(&self, start: &[u8], limit: usize) -> Result<Vec<(Vec<u8>, Vec<u8>)>>;

    /// Atomically stores `value` if `key` is absent; returns `true` if
    /// stored.
    fn put_if_absent(&self, key: &[u8], value: &[u8]) -> Result<bool>;

    /// Blocks until pending flushes/compactions are done (benchmark
    /// warm-up/teardown hook).
    fn quiesce(&self) -> Result<()>;

    /// Short system name for reports (e.g. `"cLSM"`, `"LevelDB"`).
    fn name(&self) -> &'static str;

    /// Write-amplification counters, when the system tracks them.
    fn write_amp(&self) -> Option<lsm_storage::store::WriteAmp> {
        None
    }
}

impl KvStore for clsm::Db {
    fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        clsm::Db::put(self, key, value)
    }

    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        clsm::Db::get(self, key)
    }

    fn delete(&self, key: &[u8]) -> Result<()> {
        clsm::Db::delete(self, key)
    }

    fn scan(&self, start: &[u8], limit: usize) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let snap = self.snapshot()?;
        let mut out = Vec::with_capacity(limit.min(1024));
        for item in snap.range(start, None)? {
            out.push(item?);
            if out.len() >= limit {
                break;
            }
        }
        Ok(out)
    }

    fn put_if_absent(&self, key: &[u8], value: &[u8]) -> Result<bool> {
        clsm::Db::put_if_absent(self, key, value)
    }

    fn quiesce(&self) -> Result<()> {
        self.compact_to_quiescence()
    }

    fn name(&self) -> &'static str {
        "cLSM"
    }

    fn write_amp(&self) -> Option<lsm_storage::store::WriteAmp> {
        Some(clsm::Db::write_amp(self))
    }
}
