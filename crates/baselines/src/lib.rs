//! Concurrency-control baselines for the cLSM evaluation (§5).
//!
//! The paper compares cLSM against LevelDB, HyperLevelDB, RocksDB, and
//! bLSM. Rather than binding to those C++ codebases, this crate
//! reimplements each system's **concurrency-control model** on the same
//! `lsm-storage` substrate the cLSM crate uses. That isolates exactly
//! the variable the paper studies — in-memory synchronization — with
//! the disk format, caches, WAL, and compaction held equal:
//!
//! - [`LevelDbLike`] — a global mutex serializes writers end-to-end and
//!   is briefly taken by every read (LevelDB's design: "coarse-grained
//!   synchronization that forces all puts to be executed sequentially").
//! - [`HyperLike`] — writers get sequence numbers under a short lock,
//!   insert in parallel, but *commit in order* (HyperLevelDB's
//!   fine-grained locking; scales to a few threads, then degrades).
//! - [`RocksLike`] — single-writer with lock-free reads (RocksDB's
//!   cached super-version) and optionally multi-threaded compaction.
//! - [`BlsmLike`] — single-writer with a spring-and-gear merge
//!   scheduler that throttles writes smoothly instead of stalling.
//! - [`StripedRmw`] — the §5.1 read-modify-write baseline: lock
//!   striping over a LevelDB-style store.
//! - [`Partitioned`] — the Figure 1 configuration: several stores, each
//!   owning a key-range shard.
//!
//! All baselines and `clsm::Db` implement [`KvStore`], so the workload
//! driver treats them uniformly.

#![warn(missing_docs)]

mod blsm_like;
mod common;
mod core;
mod hyper_like;
mod leveldb_like;
mod partitioned;
mod rocks_like;
mod striped_rmw;

pub use blsm_like::BlsmLike;
pub use common::{KvSnapshot, KvStore, RmwDecision, RmwResult, ScanRange};
pub use hyper_like::HyperLike;
pub use leveldb_like::LevelDbLike;
pub use partitioned::Partitioned;
pub use rocks_like::RocksLike;
pub use striped_rmw::StripedRmw;

pub use clsm_util::error::{Error, Result};
