//! The §5.1 read-modify-write baseline: lock striping over a
//! LevelDB-style store.
//!
//! "To establish a comparison baseline, we augment LevelDB with a
//! textbook RMW implementation based on lock striping. The algorithm
//! protects each RMW and write operation with an exclusive granular
//! lock to the accessed key. The basic read and write implementations
//! remain the same." (§5.1, citing Gray & Reuter.)

use std::path::Path;

use parking_lot::Mutex;

use clsm::Options;
use clsm_util::bloom::hash_seeded;
use clsm_util::error::Result;

use crate::common::{
    KvSnapshot, KvStore, RmwDecision, RmwResult, ScanRange, WriteBatch, WriteOptions,
};
use crate::leveldb_like::LevelDbLike;

/// Number of stripes (a power of two).
const STRIPES: usize = 64;

/// A LevelDB-style store with lock-striped RMW.
pub struct StripedRmw {
    db: LevelDbLike,
    stripes: Vec<Mutex<()>>,
}

impl StripedRmw {
    /// Opens (or creates) a store at `path`.
    pub fn open(path: &Path, opts: Options) -> Result<StripedRmw> {
        Ok(StripedRmw {
            db: LevelDbLike::open(path, opts)?,
            stripes: (0..STRIPES).map(|_| Mutex::new(())).collect(),
        })
    }

    fn stripe(&self, key: &[u8]) -> &Mutex<()> {
        &self.stripes[hash_seeded(key, 0x1357_9bdf) as usize % STRIPES]
    }

    /// Generic striped read-modify-write: lock the key's stripe, read,
    /// compute, write.
    pub fn rmw<F>(&self, key: &[u8], f: F) -> Result<()>
    where
        F: FnOnce(Option<&[u8]>) -> Option<Vec<u8>>,
    {
        let _stripe = self.stripe(key).lock();
        let current = self.db.get(key)?;
        match f(current.as_deref()) {
            Some(new) => self.db.put(key, &new),
            None => Ok(()),
        }
    }
}

impl KvStore for StripedRmw {
    fn write(&self, batch: WriteBatch, opts: &WriteOptions) -> Result<()> {
        opts.validate()?;
        // Each operation takes its key's stripe so writes serialize
        // against RMW on the same key, as the baseline prescribes.
        for (key, value) in batch.iter() {
            let _stripe = self.stripe(key).lock();
            let single = match value {
                Some(v) => WriteBatch::single_put(key, v),
                None => WriteBatch::single_delete(key),
            };
            self.db.write(single, opts)?;
        }
        Ok(())
    }

    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.db.get(key)
    }

    fn snapshot(&self) -> Result<Box<dyn KvSnapshot>> {
        self.db.snapshot()
    }

    fn scan(&self, range: ScanRange, limit: usize) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        self.db.scan(range, limit)
    }

    fn put_if_absent(&self, key: &[u8], value: &[u8]) -> Result<bool> {
        let _stripe = self.stripe(key).lock();
        if self.db.get(key)?.is_some() {
            return Ok(false);
        }
        self.db.put(key, value)?;
        Ok(true)
    }

    fn read_modify_write(
        &self,
        key: &[u8],
        f: &mut dyn FnMut(Option<&[u8]>) -> RmwDecision,
    ) -> Result<RmwResult> {
        // The textbook striped protocol: hold the key's stripe across
        // read, decide, and write.
        let _stripe = self.stripe(key).lock();
        let current = self.db.get(key)?;
        match f(current.as_deref()) {
            RmwDecision::Update(v) => {
                self.db.put(key, &v)?;
                Ok(RmwResult {
                    committed: true,
                    previous: current,
                })
            }
            RmwDecision::Delete => {
                self.db.delete(key)?;
                Ok(RmwResult {
                    committed: true,
                    previous: current,
                })
            }
            RmwDecision::Abort => Ok(RmwResult {
                committed: false,
                previous: current,
            }),
        }
    }

    fn quiesce(&self) -> Result<()> {
        self.db.quiesce()
    }

    fn name(&self) -> &'static str {
        "LevelDB+striping"
    }
}
