//! LevelDB's concurrency model: coarse-grained synchronization.
//!
//! "The original LevelDB acquires a global exclusive lock to protect
//! critical sections at the beginning and the end of each read and
//! write. The bulk of the code is guarded by a mechanism that allows a
//! single writer thread and multiple reader threads" (§4). We model
//! that faithfully:
//!
//! - every **write** holds one global mutex end-to-end (single writer);
//! - every **read** takes the same mutex briefly to capture the
//!   sequence number and component references, then reads without it.

use std::path::Path;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::Mutex;

use clsm::Options;
use clsm_util::error::Result;

use crate::common::{
    KvSnapshot, KvStore, RmwDecision, RmwResult, ScanRange, WriteBatch, WriteOptions,
};
use crate::core::BaselineCore;

/// A LevelDB-style store: globally locked writes, briefly locked reads.
pub struct LevelDbLike {
    core: Arc<BaselineCore>,
    /// The global mutex of LevelDB's `DBImpl::mutex_`.
    global: Mutex<()>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl LevelDbLike {
    /// Opens (or creates) a store at `path`.
    pub fn open(path: &Path, opts: Options) -> Result<LevelDbLike> {
        let (core, workers) = BaselineCore::open(path, &opts)?;
        Ok(LevelDbLike {
            core,
            global: Mutex::new(()),
            workers: Mutex::new(workers),
        })
    }

    fn write_one(&self, key: &[u8], value: Option<&[u8]>) -> Result<()> {
        self.core.stall_if_needed();
        {
            // Single writer: the entire write path is serialized.
            let _g = self.global.lock();
            let seq = self.core.next_seq.fetch_add(1, Ordering::SeqCst) + 1;
            self.core.apply_write(key, value, seq)?;
            self.core.publish(seq);
        }
        self.core.maybe_sync()?;
        self.core.maybe_schedule_flush();
        Ok(())
    }

    /// Captures a consistent read point the way LevelDB does: under the
    /// global mutex.
    fn read_point(&self) -> u64 {
        let _g = self.global.lock();
        self.core.visible()
    }
}

impl KvStore for LevelDbLike {
    fn write(&self, batch: WriteBatch, opts: &WriteOptions) -> Result<()> {
        // LevelDB-style writes funnel one at a time through the global
        // mutex; `disable_wal` is ignored (baselines always log).
        opts.validate()?;
        for (key, value) in batch.iter() {
            self.write_one(key, value.as_deref())?;
        }
        self.core.sync_if_requested(opts)
    }

    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let seq = self.read_point();
        self.core.get_at(key, seq)
    }

    fn snapshot(&self) -> Result<Box<dyn KvSnapshot>> {
        Ok(self.core.snapshot_at(self.read_point()))
    }

    fn scan(&self, range: ScanRange, limit: usize) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let seq = self.read_point();
        self.core.scan_at(&range, limit, seq)
    }

    fn put_if_absent(&self, key: &[u8], value: &[u8]) -> Result<bool> {
        // Without lock striping (see `StripedRmw`), LevelDB-style
        // conditional puts ride the single-writer mutex.
        self.core.stall_if_needed();
        let stored = {
            let _g = self.global.lock();
            let seq = self.core.visible();
            if self.core.get_at(key, seq)?.is_some() {
                false
            } else {
                let seq = self.core.next_seq.fetch_add(1, Ordering::SeqCst) + 1;
                self.core.apply_write(key, Some(value), seq)?;
                self.core.publish(seq);
                true
            }
        };
        self.core.maybe_sync()?;
        self.core.maybe_schedule_flush();
        Ok(stored)
    }

    fn read_modify_write(
        &self,
        key: &[u8],
        f: &mut dyn FnMut(Option<&[u8]>) -> RmwDecision,
    ) -> Result<RmwResult> {
        // LevelDB-style conditional writes ride the single-writer
        // mutex end to end: read, decide, write, all serialized.
        self.core.stall_if_needed();
        let result = {
            let _g = self.global.lock();
            let current = self.core.get_at(key, self.core.visible())?;
            match f(current.as_deref()) {
                RmwDecision::Abort => RmwResult {
                    committed: false,
                    previous: current,
                },
                decision => {
                    let value = match &decision {
                        RmwDecision::Update(v) => Some(v.as_slice()),
                        _ => None,
                    };
                    let seq = self.core.next_seq.fetch_add(1, Ordering::SeqCst) + 1;
                    self.core.apply_write(key, value, seq)?;
                    self.core.publish(seq);
                    RmwResult {
                        committed: true,
                        previous: current,
                    }
                }
            }
        };
        self.core.maybe_sync()?;
        self.core.maybe_schedule_flush();
        Ok(result)
    }

    fn quiesce(&self) -> Result<()> {
        self.core.quiesce()
    }

    fn name(&self) -> &'static str {
        "LevelDB"
    }

    fn write_amp(&self) -> Option<lsm_storage::store::WriteAmp> {
        Some(self.core.write_amp())
    }
}

impl Drop for LevelDbLike {
    fn drop(&mut self) {
        self.core.shutdown_and_join(&mut self.workers.lock());
    }
}
