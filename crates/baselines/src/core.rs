//! Shared machinery for all baselines: memtable/WAL/flush/compaction
//! plumbing identical to cLSM's, minus cLSM's concurrency control.
//!
//! Each baseline front-end decides *how writers synchronize* (global
//! mutex, ordered commit, striped locks…); this core provides the
//! sequence-numbered storage stack they synchronize over, so that
//! benchmark differences come from the concurrency control alone.

use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::{Condvar, Mutex, RwLock};

use clsm::{Memtable, Options};
use clsm_util::error::{Error, Result};
use clsm_util::rcu::RcuCell;
use lsm_storage::format::{ValueKind, WriteRecord};
use lsm_storage::iter::{InternalIterator, MergingIterator};
use lsm_storage::wal::SyncMode;
use lsm_storage::Store;

/// The storage stack under a baseline's concurrency control.
pub(crate) struct BaselineCore {
    pub(crate) store: Store,
    pub(crate) mem: RcuCell<Arc<Memtable>>,
    pub(crate) imm: RcuCell<Option<Arc<Memtable>>>,
    /// Next sequence number to assign (LevelDB-style).
    pub(crate) next_seq: AtomicU64,
    /// Highest sequence number whose write is visible to reads.
    pub(crate) visible_seq: AtomicU64,
    pub(crate) memtable_bytes: usize,
    sync_writes: bool,
    flush_pending: AtomicBool,
    shutdown: AtomicBool,
    work_mutex: Mutex<()>,
    work_cv: Condvar,
    /// Writers hold this shared during inserts; the flush swap takes it
    /// exclusively (same role as cLSM's shared-exclusive lock, but here
    /// it is ordinary and not the contended path).
    swap_lock: RwLock<()>,
}

impl BaselineCore {
    /// Opens the stack, replays the WAL, and spawns maintenance
    /// threads.
    pub(crate) fn open(dir: &Path, opts: &Options) -> Result<(Arc<Self>, Vec<JoinHandle<()>>)> {
        let (store, recovered) = Store::open(dir, opts.store.clone())?;
        let mem = Arc::new(Memtable::new());
        for rec in &recovered.records {
            let value = match rec.kind {
                ValueKind::Put => Some(rec.value.as_slice()),
                ValueKind::Delete => None,
            };
            mem.insert(&rec.key, rec.ts, value);
        }
        let core = Arc::new(BaselineCore {
            store,
            mem: RcuCell::new(mem),
            imm: RcuCell::new(None),
            next_seq: AtomicU64::new(recovered.last_ts),
            visible_seq: AtomicU64::new(recovered.last_ts),
            memtable_bytes: opts.memtable_bytes,
            sync_writes: opts.sync_writes,
            flush_pending: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            work_mutex: Mutex::new(()),
            work_cv: Condvar::new(),
            swap_lock: RwLock::new(()),
        });

        let mut workers = Vec::new();
        {
            let core = Arc::clone(&core);
            workers.push(
                std::thread::Builder::new()
                    .name("baseline-flush".into())
                    .spawn(move || flush_worker(core))
                    .expect("spawn flush worker"),
            );
        }
        for i in 0..opts.compaction_threads {
            let core = Arc::clone(&core);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("baseline-compact-{i}"))
                    .spawn(move || compaction_worker(core))
                    .expect("spawn compaction worker"),
            );
        }
        Ok((core, workers))
    }

    /// Logs and inserts one write at `seq`. The caller is responsible
    /// for writer-side synchronization and for publishing visibility.
    pub(crate) fn apply_write(&self, key: &[u8], value: Option<&[u8]>, seq: u64) -> Result<()> {
        if key.is_empty() {
            return Err(Error::invalid_argument("empty keys are not supported"));
        }
        let record = match value {
            Some(v) => WriteRecord::put(seq, key, v),
            None => WriteRecord::delete(seq, key),
        };
        let _swap = self.swap_lock.read();
        self.store.log(&[record], SyncMode::Async)?;
        self.mem.load().insert(key, seq, value);
        Ok(())
    }

    /// Waits for durability when configured.
    pub(crate) fn maybe_sync(&self) -> Result<()> {
        if self.sync_writes {
            self.store.sync_wal()?;
        }
        Ok(())
    }

    /// Durability wait for an explicit `WriteOptions::sync` request,
    /// on top of whatever `maybe_sync` already did. The baselines
    /// always log — `disable_wal` is accepted but ignored, since the
    /// WAL is integral to every modeled system.
    pub(crate) fn sync_if_requested(&self, opts: &clsm_kv::WriteOptions) -> Result<()> {
        if opts.sync && !self.sync_writes {
            self.store.sync_wal()?;
        }
        Ok(())
    }

    /// Marks everything up to `seq` visible (caller guarantees all
    /// writes `<= seq` are inserted).
    pub(crate) fn publish(&self, seq: u64) {
        self.visible_seq.fetch_max(seq, Ordering::Release);
    }

    /// Reads `key` at `seq` through `mem → imm → disk`.
    pub(crate) fn get_at(&self, key: &[u8], seq: u64) -> Result<Option<Vec<u8>>> {
        if let Some((_, v)) = self.mem.load().get_latest(key, seq) {
            return Ok(v.map(<[u8]>::to_vec));
        }
        if let Some(imm) = self.imm.load() {
            if let Some((_, v)) = imm.get_latest(key, seq) {
                return Ok(v.map(<[u8]>::to_vec));
            }
        }
        match self.store.get(key, seq)? {
            Some((_, ValueKind::Put, v)) => Ok(Some(v)),
            _ => Ok(None),
        }
    }

    /// The currently visible sequence number.
    pub(crate) fn visible(&self) -> u64 {
        self.visible_seq.load(Ordering::Acquire)
    }

    /// Consistent scan at `seq`: up to `limit` live pairs in `range`.
    pub(crate) fn scan_at(
        &self,
        range: &clsm_kv::ScanRange,
        limit: usize,
        seq: u64,
    ) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let (start, end) = range.as_keys();
        let mut children: Vec<Box<dyn InternalIterator>> = Vec::new();
        children.push(Box::new(self.mem.load().internal_iter()));
        if let Some(imm) = self.imm.load() {
            children.push(Box::new(imm.internal_iter()));
        }
        let (_version, disk) = self.store.version_iterators()?;
        children.extend(disk);
        let mut merged = MergingIterator::new(children);
        merged.seek(start.as_deref().unwrap_or_default(), seq);

        let mut out = Vec::with_capacity(limit.min(1024));
        let mut last_key: Option<Vec<u8>> = None;
        while merged.valid() && out.len() < limit {
            if let Some(end) = &end {
                if merged.user_key() >= end.as_slice() {
                    break;
                }
            }
            if merged.ts() > seq || last_key.as_deref() == Some(merged.user_key()) {
                merged.next();
                continue;
            }
            last_key = Some(merged.user_key().to_vec());
            if merged.kind() == ValueKind::Put {
                out.push((merged.user_key().to_vec(), merged.value().to_vec()));
            }
            merged.next();
        }
        merged.status()?;
        Ok(out)
    }

    /// Fraction of the memtable budget used (for bLSM's gear
    /// throttling).
    pub(crate) fn fill_fraction(&self) -> f64 {
        self.mem.load().memory_usage() as f64 / self.memtable_bytes as f64
    }

    /// Returns `true` when the immutable memtable is still being
    /// flushed while the mutable one is full (hard stall condition).
    pub(crate) fn should_stall(&self) -> bool {
        self.mem.load().memory_usage() >= self.memtable_bytes && self.imm.load().is_some()
    }

    /// Blocks while [`BaselineCore::should_stall`] holds.
    pub(crate) fn stall_if_needed(&self) {
        while self.should_stall() && !self.shutdown.load(Ordering::Acquire) {
            let mut g = self.work_mutex.lock();
            if self.should_stall() {
                self.work_cv
                    .wait_for(&mut g, std::time::Duration::from_millis(50));
            }
        }
    }

    /// Schedules a flush if the memtable crossed its budget.
    pub(crate) fn maybe_schedule_flush(&self) {
        if self.mem.load().memory_usage() >= self.memtable_bytes {
            self.schedule_flush();
        }
    }

    pub(crate) fn schedule_flush(&self) {
        if !self.flush_pending.swap(true, Ordering::AcqRel) {
            let _g = self.work_mutex.lock();
            self.work_cv.notify_all();
        }
    }

    /// Blocks until flush and compaction queues drain (bench hook).
    pub(crate) fn quiesce(&self) -> Result<()> {
        loop {
            self.schedule_flush();
            let busy = self.flush_pending.load(Ordering::Acquire)
                || !self.mem.load().is_empty()
                || self.imm.load().is_some()
                || self.store.needs_compaction();
            if let Some(e) = self.store.wal_poisoned() {
                return Err(e);
            }
            if !busy {
                return Ok(());
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
    }

    /// Write-amplification counters from the shared store.
    pub(crate) fn write_amp(&self) -> lsm_storage::store::WriteAmp {
        self.store.write_amp()
    }

    /// Boxes a [`CoreSnapshot`] at `seq` (front-ends pick the read
    /// point according to their concurrency model).
    pub(crate) fn snapshot_at(self: &Arc<Self>, seq: u64) -> Box<dyn clsm_kv::KvSnapshot> {
        Box::new(CoreSnapshot {
            core: Arc::clone(self),
            seq,
        })
    }

    /// Stops maintenance threads (front-ends call from `Drop`).
    pub(crate) fn shutdown_and_join(&self, workers: &mut Vec<JoinHandle<()>>) {
        self.shutdown.store(true, Ordering::Release);
        {
            let _g = self.work_mutex.lock();
            self.work_cv.notify_all();
        }
        for h in workers.drain(..) {
            let _ = h.join();
        }
        let _ = self.store.sync_wal();
    }

    fn flush_once(&self) -> Result<bool> {
        let (imm, new_wal) = {
            let _excl = self.swap_lock.write();
            let old = self.mem.load();
            if old.is_empty() {
                return Ok(false);
            }
            self.imm.store(Some(Arc::clone(&old)));
            self.mem.store(Arc::new(Memtable::new()));
            let new_wal = self.store.rotate_wal()?;
            (old, new_wal)
        };
        let mut iter = imm.internal_iter();
        // Baselines hold no snapshot registry: the watermark is the
        // current visible sequence (short scans pin components
        // directly).
        let watermark = self.visible();
        self.store
            .flush_memtable(&mut iter, watermark, imm.max_ts(), new_wal)?;
        self.imm.store(None);
        Ok(true)
    }
}

/// A baseline snapshot: a visible sequence number captured at creation
/// plus a handle on the core.
///
/// Reads through it see exactly the writes visible at capture time.
/// Unlike cLSM's snapshots there is no version pinning — the baselines'
/// GC watermark is the *current* visible sequence — so a long-lived
/// handle may lose old versions to compaction, matching the modeled
/// systems' short-read-point behavior.
pub(crate) struct CoreSnapshot {
    core: Arc<BaselineCore>,
    seq: u64,
}

impl clsm_kv::KvSnapshot for CoreSnapshot {
    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.core.get_at(key, self.seq)
    }

    fn scan(&self, range: clsm_kv::ScanRange, limit: usize) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        self.core.scan_at(&range, limit, self.seq)
    }
}

fn flush_worker(core: Arc<BaselineCore>) {
    loop {
        {
            let mut g = core.work_mutex.lock();
            while !core.flush_pending.load(Ordering::Acquire)
                && !core.shutdown.load(Ordering::Acquire)
            {
                core.work_cv
                    .wait_for(&mut g, std::time::Duration::from_millis(50));
            }
        }
        if core.shutdown.load(Ordering::Acquire) {
            return;
        }
        if core.flush_once().is_err() {
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        core.flush_pending.store(false, Ordering::Release);
        let _g = core.work_mutex.lock();
        core.work_cv.notify_all();
    }
}

fn compaction_worker(core: Arc<BaselineCore>) {
    loop {
        if core.shutdown.load(Ordering::Acquire) {
            return;
        }
        let did_work = core.store.needs_compaction()
            && core.store.maybe_compact(core.visible()).unwrap_or(false);
        if !did_work {
            let mut g = core.work_mutex.lock();
            if !core.shutdown.load(Ordering::Acquire) {
                core.work_cv
                    .wait_for(&mut g, std::time::Duration::from_millis(20));
            }
        }
    }
}
