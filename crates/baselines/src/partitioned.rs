//! Range-partitioned composition of stores (the Figure 1 setup).
//!
//! Figure 1 compares one big cLSM partition against several small
//! LevelDB/HyperLevelDB partitions. [`Partitioned`] routes operations
//! to per-range child stores. Cross-partition scans are *not*
//! consistent — precisely the drawback the paper cites for
//! partitioning ("the data store's consistent snapshot scans do not
//! span multiple partitions", §2.2).

use clsm_util::error::Result;

use crate::common::{
    KvSnapshot, KvStore, RmwDecision, RmwResult, ScanRange, WriteBatch, WriteOptions,
};

/// N stores, each owning a contiguous key range.
pub struct Partitioned<S: KvStore> {
    parts: Vec<S>,
    /// Exclusive upper boundary of each partition except the last.
    boundaries: Vec<Vec<u8>>,
}

impl<S: KvStore> Partitioned<S> {
    /// Composes `parts`; `boundaries[i]` is the exclusive upper key
    /// bound of `parts[i]` (so `boundaries.len() == parts.len() - 1`
    /// and boundaries are strictly increasing).
    pub fn new(parts: Vec<S>, boundaries: Vec<Vec<u8>>) -> Partitioned<S> {
        assert_eq!(boundaries.len() + 1, parts.len());
        debug_assert!(boundaries.windows(2).all(|w| w[0] < w[1]));
        Partitioned { parts, boundaries }
    }

    /// Index of the partition owning `key`.
    pub fn partition_of(&self, key: &[u8]) -> usize {
        self.boundaries.partition_point(|b| b.as_slice() <= key)
    }

    /// Direct access to one partition (for partition-pinned drivers).
    pub fn part(&self, i: usize) -> &S {
        &self.parts[i]
    }

    /// Number of partitions.
    pub fn num_parts(&self) -> usize {
        self.parts.len()
    }
}

impl<S: KvStore> KvStore for Partitioned<S> {
    fn write(&self, batch: WriteBatch, opts: &WriteOptions) -> Result<()> {
        opts.validate()?;
        // One sub-batch per touched partition, keeping whatever batch
        // atomicity the child provides *within* a partition. A batch
        // that spans partitions is not atomic as a whole — the §2.2
        // drawback partitioning is cited for.
        let mut per: std::collections::BTreeMap<usize, WriteBatch> =
            std::collections::BTreeMap::new();
        for (key, value) in batch {
            let sub = per.entry(self.partition_of(&key)).or_default();
            match value {
                Some(v) => sub.put(key, v),
                None => sub.delete(key),
            };
        }
        for (part, sub) in per {
            self.parts[part].write(sub, opts)?;
        }
        Ok(())
    }

    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.parts[self.partition_of(key)].get(key)
    }

    fn snapshot(&self) -> Result<Box<dyn KvSnapshot>> {
        // One child snapshot per partition. Each partition is
        // internally consistent; the union is not — "the data store's
        // consistent snapshot scans do not span multiple partitions"
        // (§2.2), which is exactly what Figure 1 demonstrates.
        let parts = self
            .parts
            .iter()
            .map(KvStore::snapshot)
            .collect::<Result<Vec<_>>>()?;
        Ok(Box::new(PartitionedSnapshot {
            parts,
            boundaries: self.boundaries.clone(),
        }))
    }

    fn scan(&self, range: ScanRange, limit: usize) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        // Stitches per-partition scans; each partition is internally
        // consistent, the union is not (Figure 1's caveat).
        let (start, end) = range.as_keys();
        let mut out = Vec::with_capacity(limit);
        let mut from = start.unwrap_or_default();
        let mut part = self.partition_of(&from);
        while out.len() < limit && part < self.parts.len() {
            let sub = ScanRange {
                start: std::ops::Bound::Included(from.clone()),
                end: end
                    .clone()
                    .map_or(std::ops::Bound::Unbounded, std::ops::Bound::Excluded),
            };
            let got = self.parts[part].scan(sub, limit - out.len())?;
            out.extend(got);
            part += 1;
            if part <= self.boundaries.len() && part > 0 {
                from = self.boundaries[part - 1].clone();
            }
        }
        Ok(out)
    }

    fn put_if_absent(&self, key: &[u8], value: &[u8]) -> Result<bool> {
        self.parts[self.partition_of(key)].put_if_absent(key, value)
    }

    fn read_modify_write(
        &self,
        key: &[u8],
        f: &mut dyn FnMut(Option<&[u8]>) -> RmwDecision,
    ) -> Result<RmwResult> {
        // Single-key, so routing preserves whatever atomicity the
        // owning partition provides.
        self.parts[self.partition_of(key)].read_modify_write(key, f)
    }

    fn quiesce(&self) -> Result<()> {
        for p in &self.parts {
            p.quiesce()?;
        }
        Ok(())
    }

    fn name(&self) -> &'static str {
        "partitioned"
    }
}

/// Per-partition child snapshots stitched behind one [`KvSnapshot`].
struct PartitionedSnapshot {
    parts: Vec<Box<dyn KvSnapshot>>,
    boundaries: Vec<Vec<u8>>,
}

impl PartitionedSnapshot {
    fn partition_of(&self, key: &[u8]) -> usize {
        self.boundaries.partition_point(|b| b.as_slice() <= key)
    }
}

impl KvSnapshot for PartitionedSnapshot {
    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.parts[self.partition_of(key)].get(key)
    }

    fn scan(&self, range: ScanRange, limit: usize) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let (start, end) = range.as_keys();
        let mut out = Vec::with_capacity(limit);
        let mut from = start.unwrap_or_default();
        let mut part = self.partition_of(&from);
        while out.len() < limit && part < self.parts.len() {
            let sub = ScanRange {
                start: std::ops::Bound::Included(from.clone()),
                end: end
                    .clone()
                    .map_or(std::ops::Bound::Unbounded, std::ops::Bound::Excluded),
            };
            let got = self.parts[part].scan(sub, limit - out.len())?;
            out.extend(got);
            part += 1;
            if part <= self.boundaries.len() && part > 0 {
                from = self.boundaries[part - 1].clone();
            }
        }
        Ok(out)
    }
}
