//! Concurrency tests for the lock-free metrics primitives: many
//! threads hammer the same histogram/counter/registry while a reader
//! takes snapshots, and every recorded sample must be accounted for.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use clsm_util::metrics::{ConcurrentHistogram, Counter, MetricsRegistry};

#[test]
fn histogram_hammered_from_many_threads_keeps_invariants() {
    let hist = Arc::new(ConcurrentHistogram::new());
    let threads = 8u64;
    let per_thread = 50_000u64;

    std::thread::scope(|scope| {
        for t in 0..threads {
            let hist = Arc::clone(&hist);
            scope.spawn(move || {
                // Each thread records a known arithmetic ramp offset by
                // its id, so the merged distribution is deterministic.
                for i in 0..per_thread {
                    hist.record(1 + (i * threads + t) % 10_000);
                }
            });
        }
    });

    let snap = hist.snapshot();
    // Count invariant: not one sample lost, despite striping.
    assert_eq!(snap.count(), threads * per_thread);
    assert_eq!(hist.count(), threads * per_thread);

    // The values are uniform over [1, 10_000]; percentile estimates
    // must be monotone and land in the recorded range (the histogram
    // is bucketed, so allow bucket-boundary slack above the max).
    let p50 = snap.percentile(50.0);
    let p90 = snap.percentile(90.0);
    let p99 = snap.percentile(99.0);
    assert!(snap.min() >= 1, "min {} below recorded range", snap.min());
    assert!(p50 <= p90 && p90 <= p99, "percentiles not monotone");
    assert!(
        (2_500..=7_500).contains(&p50),
        "p50 {p50} implausible for uniform[1,10000]"
    );
    assert!(p99 >= 9_000, "p99 {p99} implausible for uniform[1,10000]");
    assert!(snap.max() >= 9_999, "max {} lost the tail", snap.max());
}

#[test]
fn histogram_snapshots_race_with_writers() {
    let hist = Arc::new(ConcurrentHistogram::new());
    let stop = Arc::new(AtomicBool::new(false));
    let writers = 8u64;
    let per_thread = 20_000u64;

    std::thread::scope(|scope| {
        // A reader snapshots continuously; each observed count must be
        // monotonically non-decreasing and never exceed the final total.
        {
            let hist = Arc::clone(&hist);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut last = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let c = hist.snapshot().count();
                    assert!(c >= last, "snapshot count went backwards: {last} -> {c}");
                    assert!(c <= writers * per_thread);
                    last = c;
                }
            });
        }
        for _ in 0..writers {
            let hist = Arc::clone(&hist);
            scope.spawn(move || {
                for i in 0..per_thread {
                    hist.record(i % 1_000);
                }
            });
        }
        // Writers' scope handles join before the reader is told to stop:
        // spawn a watchdog that flips the flag once all samples landed.
        {
            let hist = Arc::clone(&hist);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                while hist.count() < writers * per_thread {
                    std::thread::yield_now();
                }
                stop.store(true, Ordering::Relaxed);
            });
        }
    });
    assert_eq!(hist.snapshot().count(), writers * per_thread);
}

#[test]
fn registry_counters_and_histograms_hammered_concurrently() {
    let registry = Arc::new(MetricsRegistry::new());
    let threads = 8u64;
    let per_thread = 10_000u64;

    std::thread::scope(|scope| {
        for t in 0..threads {
            let registry = Arc::clone(&registry);
            scope.spawn(move || {
                // Every thread fetches the same instruments by name —
                // registration is idempotent and hands back the shared
                // primitive.
                let ops = registry.counter("test.ops");
                let lat = registry.histogram("test.latency_ns");
                let depth = registry.gauge("test.depth");
                for i in 0..per_thread {
                    ops.inc();
                    lat.record_duration(Duration::from_nanos(100 + (i * threads + t) % 500));
                    if i % 2 == 0 {
                        depth.add(1);
                    } else {
                        depth.sub(1);
                    }
                }
            });
        }
    });

    let snap = registry.snapshot();
    assert_eq!(snap.counters["test.ops"], threads * per_thread);
    assert_eq!(snap.gauges["test.depth"], 0);
    let h = &snap.histograms["test.latency_ns"];
    assert_eq!(h.count, threads * per_thread);
    assert!(h.min >= 100 && h.p50 >= h.min && h.p99 >= h.p50);
    // Renderers stay coherent under the same snapshot.
    let json = snap.to_json();
    assert!(json.contains("\"test.ops\""));
    assert!(snap.to_text().contains("test.latency_ns"));
}

#[test]
fn counter_add_is_lossless_across_threads() {
    let c = Arc::new(Counter::new());
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let c = Arc::clone(&c);
            scope.spawn(move || {
                for i in 0..100_000u64 {
                    if i % 16 == 0 {
                        c.add(3);
                    } else {
                        c.inc();
                    }
                }
            });
        }
    });
    let per = 100_000u64 / 16 * 3 + (100_000 - 100_000 / 16);
    assert_eq!(c.get(), 8 * per);
}
