//! Flight-recorder integration tests: a multi-thread hammer (torn
//! events must never surface, per-thread sequences must stay strictly
//! increasing) and a ring-wrap test (eviction must be reported in the
//! drain summary, never silent).
//!
//! The recorder is process-global, so the tests serialize on one gate
//! and identify their own events by thread name — rings left behind by
//! another test are simply ignored.

use std::sync::Mutex;

use clsm_util::trace::{self, Phase, ThreadDrainSummary, TraceId, TraceSnapshot};

fn serial() -> std::sync::MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

static HAMMER_SPAN: TraceId = TraceId::new("trace_test.hammer.span");
static HAMMER_INSTANT: TraceId = TraceId::new("trace_test.hammer.instant");
static WRAP_INSTANT: TraceId = TraceId::new("trace_test.wrap.instant");

fn summary_for<'a>(snap: &'a TraceSnapshot, name: &str) -> &'a ThreadDrainSummary {
    snap.threads
        .iter()
        .find(|t| t.name == name)
        .unwrap_or_else(|| panic!("no drain summary for thread {name}"))
}

#[test]
fn hammer_yields_ordered_untorn_streams() {
    let _g = serial();
    const THREADS: u64 = 8;
    const ITERS: u64 = 10_000; // 3 events per iter, well under capacity
    trace::enable(1 << 16);

    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mut handles = Vec::new();
    for t in 0..THREADS {
        handles.push(
            std::thread::Builder::new()
                .name(format!("hammer-{t}"))
                .spawn(move || {
                    for i in 0..ITERS {
                        let tag = (t << 32) | i;
                        let _s = HAMMER_SPAN.span_with(tag);
                        HAMMER_INSTANT.instant(tag);
                    }
                })
                .unwrap(),
        );
    }

    // Drain concurrently while the writers hammer: the seqlock must
    // hand back only intact events (valid name ids, nonzero
    // timestamps), never torn ones.
    let concurrent_reader = {
        let stop = std::sync::Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut drains = 0u32;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let snap = trace::drain();
                for e in &snap.events {
                    assert!(
                        (e.name_id as usize) < snap.names.len(),
                        "torn event: name_id {} out of range",
                        e.name_id
                    );
                    assert!(e.ts_ns > 0, "torn event: zero timestamp");
                }
                drains += 1;
            }
            drains
        })
    };

    for h in handles {
        h.join().unwrap();
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    assert!(concurrent_reader.join().unwrap() > 0);

    let snap = trace::drain();
    trace::disable();

    for t in 0..THREADS {
        let name = format!("hammer-{t}");
        let summary = summary_for(&snap, &name);
        assert_eq!(
            summary.recorded,
            ITERS * 3,
            "{name}: every event accounted for"
        );
        assert_eq!(summary.dropped, 0, "{name}: capacity was large enough");
        assert_eq!(summary.returned, ITERS * 3);

        let events: Vec<_> = snap
            .events
            .iter()
            .filter(|e| e.thread == summary.thread)
            .collect();
        assert_eq!(events.len() as u64, ITERS * 3);

        // Per-thread sequence numbers are strictly increasing (the
        // merged stream is (ts, thread, seq)-sorted, so a stable sort
        // by seq must already hold per thread).
        for pair in events.windows(2) {
            assert!(
                pair[1].seq > pair[0].seq,
                "{name}: seqs not strictly increasing: {} then {}",
                pair[0].seq,
                pair[1].seq
            );
        }

        // No torn payloads: every event carries this thread's tag in
        // the argument's high bits (End events carry 0), and the tag's
        // low bits never decrease.
        let mut last_i = None;
        let mut begins = 0u64;
        let mut ends = 0u64;
        for e in &events {
            match e.phase {
                Phase::End => {
                    ends += 1;
                    continue;
                }
                Phase::Begin => begins += 1,
                Phase::Instant => {}
            }
            assert_eq!(e.arg >> 32, t, "{name}: foreign or torn arg {:#x}", e.arg);
            let i = e.arg & 0xffff_ffff;
            assert!(
                last_i.is_none_or(|l| i >= l),
                "{name}: iteration tag went backwards"
            );
            last_i = Some(i);
        }
        assert_eq!(begins, ITERS, "{name}: one Begin per span");
        assert_eq!(ends, ITERS, "{name}: one End per span");
    }
}

#[test]
fn ring_wrap_reports_eviction_in_summary() {
    let _g = serial();
    const CAPACITY: u64 = 256;
    const RECORDED: u64 = 10_000;
    trace::enable(CAPACITY as usize);

    // A fresh thread picks up the small capacity (rings are sized at
    // first event, per thread).
    std::thread::Builder::new()
        .name("wrapper".into())
        .spawn(|| {
            for i in 0..RECORDED {
                WRAP_INSTANT.instant(i);
            }
        })
        .unwrap()
        .join()
        .unwrap();

    let snap = trace::drain();
    trace::disable();

    let summary = summary_for(&snap, "wrapper");
    assert_eq!(summary.recorded, RECORDED);
    assert!(
        summary.returned <= CAPACITY,
        "ring cannot hold more than its capacity"
    );
    assert_eq!(
        summary.dropped,
        RECORDED - summary.returned,
        "every evicted event is reported, never silent"
    );
    assert!(snap.total_dropped() >= summary.dropped);

    // The survivors are the *newest* events, intact and in order:
    // for this workload arg == seq by construction.
    let events: Vec<_> = snap
        .events
        .iter()
        .filter(|e| e.thread == summary.thread)
        .collect();
    assert_eq!(events.len() as u64, summary.returned);
    assert!(!events.is_empty());
    for e in &events {
        assert_eq!(e.arg, e.seq, "torn or misattributed slot");
        assert!(e.seq >= RECORDED - CAPACITY, "an evicted event survived");
    }
    for pair in events.windows(2) {
        assert!(pair[1].seq > pair[0].seq);
    }
}
