//! Log-bucketed latency histogram for the evaluation harness.
//!
//! The paper reports 90th-percentile latencies (Figures 5b and 6b).
//! This histogram uses 16 sub-buckets per power of two, bounding the
//! relative quantile error at 1/16 ≈ 6.25%, with O(1) recording and no
//! allocation after construction. Histograms are kept per worker thread
//! and merged after the run, so recording needs no synchronization.

/// Values below this are stored in exact unit buckets.
const LINEAR_LIMIT: u64 = 16;
/// Sub-buckets per power of two above the linear range.
const SUB_BUCKETS: usize = 16;
/// Highest representable exponent (2^40 ns ≈ 18 minutes).
const MAX_EXPONENT: u32 = 40;
/// Total bucket count. Shared with `metrics::ConcurrentHistogram`,
/// whose stripes use the same bucket layout so they fold losslessly
/// into a [`Histogram`].
pub(crate) const NUM_BUCKETS: usize =
    LINEAR_LIMIT as usize + (MAX_EXPONENT as usize - 4) * SUB_BUCKETS;

/// A fixed-size logarithmic histogram of `u64` samples (typically
/// nanoseconds).
///
/// # Examples
///
/// ```
/// let mut h = clsm_util::histogram::Histogram::new();
/// for v in 1..=1000u64 {
///     h.record(v);
/// }
/// let p50 = h.percentile(50.0);
/// assert!((450..=560).contains(&p50), "p50 = {p50}");
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    pub(crate) fn bucket_index(value: u64) -> usize {
        if value < LINEAR_LIMIT {
            return value as usize;
        }
        // `g` = number of significant bits, ≥ 5 here.
        let g = 64 - value.leading_zeros();
        let g = g.min(MAX_EXPONENT);
        let shifted = (value >> (g - 5)) as usize & (SUB_BUCKETS - 1);
        LINEAR_LIMIT as usize + (g as usize - 5) * SUB_BUCKETS + shifted
    }

    /// Upper bound of the bucket at `index` (used as the reported
    /// quantile value, making percentiles conservative).
    fn bucket_upper_bound(index: usize) -> u64 {
        if index < LINEAR_LIMIT as usize {
            return index as u64;
        }
        let rel = index - LINEAR_LIMIT as usize;
        let g = (rel / SUB_BUCKETS) as u32 + 5;
        let sub = (rel % SUB_BUCKETS) as u64;
        let low = (1u64 << (g - 1)) + (sub << (g - 5));
        low + (1u64 << (g - 5)) - 1
    }

    /// Rebuilds a histogram from raw parts (a `ConcurrentHistogram`
    /// stripe fold). `buckets` must use this type's bucket layout.
    pub(crate) fn from_raw(buckets: Vec<u64>, count: u64, sum: u64, min: u64, max: u64) -> Self {
        debug_assert_eq!(buckets.len(), NUM_BUCKETS);
        Histogram {
            buckets,
            count,
            sum,
            min,
            max,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Value at percentile `p` (e.g. `90.0`), conservative upward.
    ///
    /// Returns 0 for an empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 100.0);
        let threshold = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= threshold {
                return Self::bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_benign() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(90.0), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn exact_in_linear_range() {
        let mut h = Histogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        assert_eq!(h.percentile(0.1), 0);
        assert_eq!(h.percentile(100.0), 15);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 15);
    }

    #[test]
    fn bounded_relative_error() {
        let mut h = Histogram::new();
        let value = 1_000_000u64;
        for _ in 0..100 {
            h.record(value);
        }
        let p = h.percentile(50.0);
        assert!(p >= value, "conservative upward: {p}");
        assert!((p - value) as f64 / value as f64 <= 1.0 / 16.0 + 1e-9);
    }

    #[test]
    fn percentiles_are_ordered() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v * 7);
        }
        let p50 = h.percentile(50.0);
        let p90 = h.percentile(90.0);
        let p99 = h.percentile(99.0);
        assert!(p50 <= p90 && p90 <= p99);
        assert!(p99 <= h.max());
    }

    #[test]
    fn merge_equals_union() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for v in 1..1000u64 {
            if v % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        for p in [10.0, 50.0, 90.0, 99.0] {
            assert_eq!(a.percentile(p), whole.percentile(p));
        }
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn giant_values_saturate_gracefully() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(1);
        assert_eq!(h.count(), 2);
        assert!(h.percentile(100.0) >= 1);
        assert_eq!(h.max(), u64::MAX);
    }

    #[test]
    fn bucket_bounds_are_monotone() {
        let mut last = 0;
        for i in 0..NUM_BUCKETS {
            let ub = Histogram::bucket_upper_bound(i);
            assert!(ub >= last, "bucket {i}: {ub} < {last}");
            last = ub;
        }
    }

    #[test]
    fn index_maps_value_into_its_bucket_bounds() {
        for v in [0u64, 1, 15, 16, 17, 100, 1023, 1024, 1_000_000, 1 << 39] {
            let i = Histogram::bucket_index(v);
            let ub = Histogram::bucket_upper_bound(i);
            assert!(v <= ub, "v={v} i={i} ub={ub}");
        }
    }
}
