//! Epoch-protected pointer cell for the global component pointers.
//!
//! The paper (§3.1) uses reference counters per component plus "an
//! RCU-like mechanism to protect the pointers to memory components from
//! being switched while an operation is in the middle of the (short)
//! critical section in which the pointer is read and its reference
//! counter is increased".
//!
//! [`RcuCell`] is that mechanism: readers pin an epoch (see
//! [`crate::epoch`]), dereference the current value and clone it (for
//! `Arc` payloads, the clone *is* the reference-count increment);
//! writers swap in a new value and defer destruction of the old one
//! until all readers have moved past it. Loads never block and never
//! take a lock, which is what makes cLSM's `get` entirely non-blocking.

use std::sync::atomic::{AtomicPtr, Ordering::SeqCst};

use crate::epoch;

/// A read-copy-update cell holding a cheaply cloneable value
/// (typically `Arc<T>` or `Option<Arc<T>>`).
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use clsm_util::rcu::RcuCell;
///
/// let cell = RcuCell::new(Arc::new(1u32));
/// assert_eq!(*cell.load(), 1);
/// cell.store(Arc::new(2));
/// assert_eq!(*cell.load(), 2);
/// ```
pub struct RcuCell<V> {
    /// Always non-null: set in `new`, swapped (never nulled) in `store`
    /// and `update`, nulled only in `drop`.
    inner: AtomicPtr<V>,
}

impl<V: Clone + Send + Sync + 'static> RcuCell<V> {
    /// Creates a cell holding `value`.
    pub fn new(value: V) -> Self {
        RcuCell {
            inner: AtomicPtr::new(Box::into_raw(Box::new(value))),
        }
    }

    /// Returns a clone of the current value.
    ///
    /// Wait-free apart from the epoch pin; never blocks on writers.
    pub fn load(&self) -> V {
        let _guard = epoch::pin();
        let ptr = self.inner.load(SeqCst);
        // SAFETY: the cell is never null while the cell is alive, and
        // the pointee cannot be freed while `_guard` pins the epoch —
        // writers defer destruction past all pinned readers.
        unsafe { &*ptr }.clone()
    }

    /// Replaces the current value, deferring destruction of the old one
    /// until all in-flight readers have finished.
    pub fn store(&self, value: V) {
        let _guard = epoch::pin();
        let old = self.inner.swap(Box::into_raw(Box::new(value)), SeqCst);
        // SAFETY: `old` was just unlinked and can no longer be reached
        // by new readers; epoch reclamation waits out existing ones.
        let boxed = unsafe { Box::from_raw(old) };
        epoch::defer(move || drop(boxed));
    }

    /// Applies `f` to the current value and swaps in the result,
    /// retrying on contention. Returns the value it installed.
    ///
    /// Intended for infrequent pointer swings done under an external
    /// exclusive lock (the merge hooks), where contention is impossible;
    /// the CAS loop is belt-and-braces.
    pub fn update(&self, mut f: impl FnMut(&V) -> V) -> V {
        let _guard = epoch::pin();
        loop {
            let current = self.inner.load(SeqCst);
            // SAFETY: non-null and epoch-protected as in `load`.
            let new = f(unsafe { &*current });
            let new_ptr = Box::into_raw(Box::new(new.clone()));
            match self
                .inner
                .compare_exchange(current, new_ptr, SeqCst, SeqCst)
            {
                Ok(old) => {
                    // SAFETY: `old` equals `current`, now unlinked.
                    let boxed = unsafe { Box::from_raw(old) };
                    epoch::defer(move || drop(boxed));
                    return new;
                }
                Err(_) => {
                    // SAFETY: `new_ptr` was never published.
                    drop(unsafe { Box::from_raw(new_ptr) });
                }
            }
        }
    }
}

impl<V> Drop for RcuCell<V> {
    fn drop(&mut self) {
        let ptr = self.inner.swap(std::ptr::null_mut(), SeqCst);
        if !ptr.is_null() {
            // SAFETY: `&mut self` proves no concurrent readers exist, so
            // the current value can be reclaimed immediately.
            drop(unsafe { Box::from_raw(ptr) });
        }
    }
}

impl<V: Clone + Send + Sync + std::fmt::Debug + 'static> std::fmt::Debug for RcuCell<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("RcuCell").field(&self.load()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicUsize};
    use std::sync::Arc;

    #[test]
    fn load_store_roundtrip() {
        let cell = RcuCell::new(Arc::new(41u64));
        assert_eq!(*cell.load(), 41);
        cell.store(Arc::new(42));
        assert_eq!(*cell.load(), 42);
    }

    #[test]
    fn holds_option_payloads() {
        let cell: RcuCell<Option<Arc<String>>> = RcuCell::new(None);
        assert!(cell.load().is_none());
        cell.store(Some(Arc::new("x".to_string())));
        assert_eq!(cell.load().unwrap().as_str(), "x");
        cell.store(None);
        assert!(cell.load().is_none());
    }

    #[test]
    fn update_applies_function() {
        let cell = RcuCell::new(Arc::new(10u64));
        let installed = cell.update(|v| Arc::new(**v + 5));
        assert_eq!(*installed, 15);
        assert_eq!(*cell.load(), 15);
    }

    #[test]
    fn old_values_survive_while_held() {
        let cell = RcuCell::new(Arc::new(vec![1u8, 2, 3]));
        let held = cell.load();
        cell.store(Arc::new(vec![9]));
        // The old Arc keeps its data alive independently of the cell.
        assert_eq!(*held, vec![1, 2, 3]);
        assert_eq!(*cell.load(), vec![9]);
    }

    #[test]
    fn concurrent_readers_never_observe_teardown() {
        struct Canary(Arc<AtomicUsize>);
        impl Drop for Canary {
            fn drop(&mut self) {
                self.0.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            }
        }

        let drops = Arc::new(AtomicUsize::new(0));
        let cell = Arc::new(RcuCell::new(Arc::new(Canary(Arc::clone(&drops)))));
        let stop = Arc::new(AtomicBool::new(false));

        let mut handles = Vec::new();
        for _ in 0..3 {
            let cell = Arc::clone(&cell);
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let v = cell.load();
                    // Touch the payload; UAF here would crash or trip MIRI.
                    let _ = Arc::strong_count(&v);
                }
            }));
        }
        for _ in 0..500 {
            cell.store(Arc::new(Canary(Arc::clone(&drops))));
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
        drop(cell);
        // Not all drops may have been flushed by the epoch collector yet,
        // but none may exceed the number of stored values (500 + 1).
        assert!(drops.load(std::sync::atomic::Ordering::SeqCst) <= 501);
    }
}
