//! Concurrency and encoding utilities shared by every crate in the cLSM
//! reproduction.
//!
//! The paper ("Scaling Concurrent Log-Structured Data Stores", EuroSys
//! 2015, §4) implements "multiple custom tools based on atomic hardware
//! instructions: a shared-exclusive lock, and a non-blocking memory
//! allocator", plus an RCU-like pointer-protection scheme and the
//! timestamp machinery of Algorithm 2. This crate is our from-scratch
//! equivalent of that toolbox:
//!
//! - [`arena`] — a lock-free bump allocator backing the in-memory
//!   component (the paper's non-blocking allocator, cf. Michael '04).
//! - [`shared_lock`] — a writer-preferring shared-exclusive spin lock
//!   built on a single atomic word (Algorithm 1's `Lock`).
//! - [`rcu`] — an epoch-protected pointer cell used for the global
//!   component pointers `Pm`, `P'm`, `Pd` (the paper's "RCU-like
//!   mechanism" plus per-component reference counts).
//! - [`oracle`] — the `timeCounter` / `Active` set / `snapTime`
//!   timestamp oracle of Algorithm 2.
//! - [`epoch`] — the epoch-based reclamation scheme underneath [`rcu`]
//!   (readers pin, writers defer destruction).
//! - [`channel`] — the MPMC queue feeding the WAL logger thread (the
//!   paper's non-blocking logging queue, §4).
//! - [`combine`] — the lock-free combining queue behind the group-commit
//!   write pipeline (writers push, the commit leader drains in one swap).
//! - [`mod@env`] — the injectable storage environment ([`env::RealEnv`] for
//!   production, [`env::FaultEnv`] for deterministic crash injection).
//! - [`bloom`], [`coding`], [`crc`] — encoding substrates for the disk
//!   component (Bloom filters, varints, CRC32C).
//! - [`histogram`] — latency histograms for the evaluation harness.
//! - [`metrics`] — lock-free counters, gauges, and thread-striped
//!   concurrent histograms behind the store's observability layer.
//! - [`trace`] — the flight recorder: per-thread lock-free event rings
//!   merged into a globally ordered stream, exportable as Chrome trace
//!   JSON for `chrome://tracing` / Perfetto.
//! - [`eventlog`] — per-thread buffered event logs with a shared
//!   logical clock, the substrate of the `clsm-check` history recorder.

#![warn(missing_docs)]

pub mod arena;
pub mod bloom;
pub mod channel;
pub mod coding;
pub mod combine;
pub mod crc;
pub mod env;
pub mod epoch;
pub mod error;
pub mod eventlog;
pub mod histogram;
pub mod metrics;
pub mod oracle;
pub mod ratelimit;
pub mod rcu;
pub mod shared_lock;
pub mod tid;
pub mod trace;

pub use error::{Error, Result};
