//! Writer-preferring shared-exclusive spin lock (Algorithm 1's `Lock`).
//!
//! The cLSM algorithm synchronizes `put` operations with the merge
//! process through a shared-exclusive lock: puts hold it in shared mode
//! for the duration of a memtable insert, while the `beforeMerge` /
//! `afterMerge` hooks take it in exclusive mode for a few pointer
//! swings. The paper requires that "the lock implementation should
//! prefer exclusive locking over shared locking" so the merge process
//! cannot starve (§3.1).
//!
//! This implementation packs everything into one atomic word:
//! bit 63 is the exclusive-intent flag, bits 0..63 count shared holders.
//! A shared acquire spins while the intent flag is set (so a waiting
//! exclusive locker blocks *new* readers); an exclusive acquire claims
//! the flag and then drains existing readers.

use std::sync::atomic::{AtomicU64, Ordering};

/// Exclusive-intent flag in the high bit of the state word.
const EXCL: u64 = 1 << 63;
/// Mask of the shared-holder count.
const COUNT: u64 = EXCL - 1;

/// Spin iterations before yielding to the OS scheduler.
const SPINS_BEFORE_YIELD: u32 = 64;

/// A writer-preferring shared-exclusive lock.
///
/// # Examples
///
/// ```
/// use clsm_util::shared_lock::SharedExclusiveLock;
///
/// let lock = SharedExclusiveLock::new();
/// {
///     let _a = lock.lock_shared();
///     let _b = lock.lock_shared(); // shared mode is reentrant across holders
/// }
/// let _x = lock.lock_exclusive();
/// ```
#[derive(Debug, Default)]
pub struct SharedExclusiveLock {
    state: AtomicU64,
    /// Trace-clock nanoseconds at which the current exclusive hold
    /// began, or 0 while not exclusively held. Read by the stall
    /// watchdog; written only by exclusive lockers, so two relaxed
    /// stores per (rare) exclusive acquisition.
    excl_since_ns: AtomicU64,
}

/// RAII guard for shared mode; releases on drop.
#[must_use = "the lock is released when the guard is dropped"]
#[derive(Debug)]
pub struct SharedGuard<'a> {
    lock: &'a SharedExclusiveLock,
}

/// RAII guard for exclusive mode; releases on drop.
#[must_use = "the lock is released when the guard is dropped"]
#[derive(Debug)]
pub struct ExclusiveGuard<'a> {
    lock: &'a SharedExclusiveLock,
}

impl SharedExclusiveLock {
    /// Creates an unlocked lock.
    pub const fn new() -> Self {
        SharedExclusiveLock {
            state: AtomicU64::new(0),
            excl_since_ns: AtomicU64::new(0),
        }
    }

    /// Acquires the lock in shared mode, spinning while an exclusive
    /// locker holds or awaits the lock.
    pub fn lock_shared(&self) -> SharedGuard<'_> {
        let mut spins = 0u32;
        loop {
            let cur = self.state.load(Ordering::Relaxed);
            if cur & EXCL == 0 {
                // No exclusive intent: try to join the readers.
                if self
                    .state
                    .compare_exchange_weak(cur, cur + 1, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
                {
                    return SharedGuard { lock: self };
                }
            }
            backoff(&mut spins);
        }
    }

    /// Attempts to acquire shared mode without spinning.
    pub fn try_lock_shared(&self) -> Option<SharedGuard<'_>> {
        let cur = self.state.load(Ordering::Relaxed);
        if cur & EXCL != 0 {
            return None;
        }
        self.state
            .compare_exchange(cur, cur + 1, Ordering::Acquire, Ordering::Relaxed)
            .ok()
            .map(|_| SharedGuard { lock: self })
    }

    /// Acquires the lock in exclusive mode.
    ///
    /// Sets the intent flag first — immediately blocking new shared
    /// acquisitions — and then waits for current readers to drain, which
    /// is what gives exclusive lockers preference.
    pub fn lock_exclusive(&self) -> ExclusiveGuard<'_> {
        let mut spins = 0u32;
        // Claim the intent flag; contend with other exclusive lockers.
        loop {
            let prev = self.state.fetch_or(EXCL, Ordering::Acquire);
            if prev & EXCL == 0 {
                break;
            }
            while self.state.load(Ordering::Relaxed) & EXCL != 0 {
                backoff(&mut spins);
            }
        }
        // Drain existing shared holders.
        while self.state.load(Ordering::Acquire) & COUNT != 0 {
            backoff(&mut spins);
        }
        self.excl_since_ns
            .store(crate::trace::now_ns(), Ordering::Relaxed);
        ExclusiveGuard { lock: self }
    }

    /// How long the current exclusive hold has lasted, or `None` when
    /// the lock is not exclusively held. Racy by design: a concurrent
    /// release may make the result momentarily stale, which is fine for
    /// its consumer (the stall watchdog's threshold check).
    pub fn exclusive_held_for(&self) -> Option<std::time::Duration> {
        self.exclusive_held_since_ns().map(|since| {
            std::time::Duration::from_nanos(crate::trace::now_ns().saturating_sub(since))
        })
    }

    /// Trace-clock nanoseconds at which the current exclusive hold
    /// began, or `None` when not exclusively held. The value is stable
    /// for the duration of one hold, so a sampling observer can use it
    /// to tell "same long hold" from "many short holds".
    pub fn exclusive_held_since_ns(&self) -> Option<u64> {
        match self.excl_since_ns.load(Ordering::Relaxed) {
            0 => None,
            since => Some(since),
        }
    }

    /// Test-only fault injection: takes the lock exclusively and holds
    /// it for `hold`, so stall-detection machinery (the watchdog) can be
    /// exercised deterministically. Never call this on a production
    /// path.
    pub fn hold_exclusive_for(&self, hold: std::time::Duration) {
        let _g = self.lock_exclusive();
        std::thread::sleep(hold);
    }

    /// Returns `true` if any holder (shared or exclusive) is present.
    /// Intended for assertions and tests only.
    pub fn is_locked(&self) -> bool {
        self.state.load(Ordering::Relaxed) != 0
    }
}

/// Spin/yield backoff suitable for both many-core and single-core hosts.
#[inline]
fn backoff(spins: &mut u32) {
    if *spins < SPINS_BEFORE_YIELD {
        *spins += 1;
        std::hint::spin_loop();
    } else {
        std::thread::yield_now();
    }
}

impl Drop for SharedGuard<'_> {
    fn drop(&mut self) {
        self.lock.state.fetch_sub(1, Ordering::Release);
    }
}

impl Drop for ExclusiveGuard<'_> {
    fn drop(&mut self) {
        self.lock.excl_since_ns.store(0, Ordering::Relaxed);
        self.lock.state.fetch_and(!EXCL, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn shared_is_concurrent() {
        let lock = SharedExclusiveLock::new();
        let a = lock.lock_shared();
        let b = lock.lock_shared();
        assert!(lock.is_locked());
        drop(a);
        drop(b);
        assert!(!lock.is_locked());
    }

    #[test]
    fn try_shared_fails_under_exclusive() {
        let lock = SharedExclusiveLock::new();
        let g = lock.lock_exclusive();
        assert!(lock.try_lock_shared().is_none());
        drop(g);
        assert!(lock.try_lock_shared().is_some());
    }

    #[test]
    fn exclusive_excludes_everything() {
        let lock = Arc::new(SharedExclusiveLock::new());
        let counter = Arc::new(AtomicU32::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let lock = Arc::clone(&lock);
            let counter = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    let _g = lock.lock_exclusive();
                    // Non-atomic-style increment: load then store. Any
                    // mutual-exclusion failure loses increments.
                    let v = counter.load(Ordering::Relaxed);
                    std::hint::spin_loop();
                    counter.store(v + 1, Ordering::Relaxed);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 4000);
    }

    #[test]
    fn readers_and_writer_interleave_safely() {
        let lock = Arc::new(SharedExclusiveLock::new());
        let shared_value = Arc::new(AtomicU32::new(0));
        let stop = Arc::new(AtomicU32::new(0));

        let mut handles = Vec::new();
        for _ in 0..3 {
            let lock = Arc::clone(&lock);
            let value = Arc::clone(&shared_value);
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                while stop.load(Ordering::Relaxed) == 0 {
                    let _g = lock.lock_shared();
                    // Writers always keep the value even; readers must
                    // never observe an odd value.
                    assert_eq!(value.load(Ordering::Relaxed) % 2, 0);
                }
            }));
        }
        {
            let lock = Arc::clone(&lock);
            let value = Arc::clone(&shared_value);
            handles.push(std::thread::spawn(move || {
                for _ in 0..2000 {
                    let _g = lock.lock_exclusive();
                    value.fetch_add(1, Ordering::Relaxed);
                    value.fetch_add(1, Ordering::Relaxed);
                }
            }));
        }
        std::thread::sleep(Duration::from_millis(50));
        stop.store(1, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(shared_value.load(Ordering::Relaxed), 4000);
    }

    #[test]
    fn exclusive_hold_duration_is_tracked() {
        let lock = SharedExclusiveLock::new();
        assert!(lock.exclusive_held_for().is_none());
        {
            let _g = lock.lock_exclusive();
            std::thread::sleep(Duration::from_millis(5));
            let held = lock.exclusive_held_for().expect("exclusively held");
            assert!(held >= Duration::from_millis(4));
        }
        assert!(lock.exclusive_held_for().is_none());
        // Shared holds are not exclusive holds.
        let _s = lock.lock_shared();
        assert!(lock.exclusive_held_for().is_none());
    }

    #[test]
    fn writer_preference_blocks_new_readers() {
        // With a reader inside, a waiting writer must gate the next
        // reader. We check the observable part: after the writer queues,
        // try_lock_shared fails.
        let lock = Arc::new(SharedExclusiveLock::new());
        let g = lock.lock_shared();
        let l2 = Arc::clone(&lock);
        let writer = std::thread::spawn(move || {
            let _g = l2.lock_exclusive();
        });
        // Wait until the writer has registered intent.
        while lock.try_lock_shared().is_some() {
            std::thread::yield_now();
        }
        drop(g);
        writer.join().unwrap();
        assert!(!lock.is_locked());
    }
}
