//! Integer encodings used by the WAL and SSTable formats.
//!
//! Matches the classic LevelDB wire formats: little-endian fixed-width
//! integers and LEB128-style varints.

use crate::error::{Error, Result};

/// Appends a little-endian `u32` to `dst`.
pub fn put_fixed32(dst: &mut Vec<u8>, v: u32) {
    dst.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u64` to `dst`.
pub fn put_fixed64(dst: &mut Vec<u8>, v: u64) {
    dst.extend_from_slice(&v.to_le_bytes());
}

/// Decodes a little-endian `u32` from the first 4 bytes of `src`.
///
/// # Panics
///
/// Panics if `src` is shorter than 4 bytes.
pub fn decode_fixed32(src: &[u8]) -> u32 {
    u32::from_le_bytes(src[..4].try_into().expect("need 4 bytes"))
}

/// Decodes a little-endian `u64` from the first 8 bytes of `src`.
///
/// # Panics
///
/// Panics if `src` is shorter than 8 bytes.
pub fn decode_fixed64(src: &[u8]) -> u64 {
    u64::from_le_bytes(src[..8].try_into().expect("need 8 bytes"))
}

/// Appends `v` as a varint (7 bits per byte, MSB = continuation).
pub fn put_varint32(dst: &mut Vec<u8>, v: u32) {
    put_varint64(dst, v as u64);
}

/// Appends `v` as a varint (7 bits per byte, MSB = continuation).
pub fn put_varint64(dst: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        dst.push((v as u8 & 0x7f) | 0x80);
        v >>= 7;
    }
    dst.push(v as u8);
}

/// Decodes a varint `u32` from the front of `src`, returning the value
/// and the number of bytes consumed.
pub fn get_varint32(src: &[u8]) -> Result<(u32, usize)> {
    let (v, n) = get_varint64(src)?;
    if v > u32::MAX as u64 {
        return Err(Error::corruption("varint32 overflow"));
    }
    Ok((v as u32, n))
}

/// Decodes a varint `u64` from the front of `src`, returning the value
/// and the number of bytes consumed.
pub fn get_varint64(src: &[u8]) -> Result<(u64, usize)> {
    let mut result: u64 = 0;
    for (i, &byte) in src.iter().enumerate().take(10) {
        result |= ((byte & 0x7f) as u64) << (7 * i);
        if byte & 0x80 == 0 {
            // The 10th byte may only contribute a single bit.
            if i == 9 && byte > 1 {
                return Err(Error::corruption("varint64 overflow"));
            }
            return Ok((result, i + 1));
        }
    }
    Err(Error::corruption("truncated or overlong varint"))
}

/// Number of bytes `put_varint64` would emit for `v`.
pub fn varint_length(mut v: u64) -> usize {
    let mut len = 1;
    while v >= 0x80 {
        v >>= 7;
        len += 1;
    }
    len
}

/// Appends a length-prefixed byte slice (varint length, then bytes).
pub fn put_length_prefixed_slice(dst: &mut Vec<u8>, value: &[u8]) {
    put_varint32(dst, value.len() as u32);
    dst.extend_from_slice(value);
}

/// Decodes a length-prefixed slice from the front of `src`, returning
/// the slice and the total number of bytes consumed.
pub fn get_length_prefixed_slice(src: &[u8]) -> Result<(&[u8], usize)> {
    let (len, n) = get_varint32(src)?;
    let len = len as usize;
    if src.len() < n + len {
        return Err(Error::corruption("truncated length-prefixed slice"));
    }
    Ok((&src[n..n + len], n + len))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_roundtrip() {
        for v in [0u32, 1, 0xff, 0x1234_5678, u32::MAX] {
            let mut buf = Vec::new();
            put_fixed32(&mut buf, v);
            assert_eq!(buf.len(), 4);
            assert_eq!(decode_fixed32(&buf), v);
        }
        for v in [0u64, 1, 0xdead_beef_cafe_babe, u64::MAX] {
            let mut buf = Vec::new();
            put_fixed64(&mut buf, v);
            assert_eq!(buf.len(), 8);
            assert_eq!(decode_fixed64(&buf), v);
        }
    }

    #[test]
    fn varint_roundtrip_boundaries() {
        let cases: Vec<u64> = (0..64)
            .flat_map(|s| {
                let p = 1u64 << s;
                [p.wrapping_sub(1), p, p.wrapping_add(1)]
            })
            .chain([u64::MAX])
            .collect();
        for v in cases {
            let mut buf = Vec::new();
            put_varint64(&mut buf, v);
            assert_eq!(buf.len(), varint_length(v));
            let (decoded, n) = get_varint64(&buf).unwrap();
            assert_eq!(decoded, v);
            assert_eq!(n, buf.len());
        }
    }

    #[test]
    fn varint32_rejects_wider_values() {
        let mut buf = Vec::new();
        put_varint64(&mut buf, u32::MAX as u64 + 1);
        assert!(get_varint32(&buf).is_err());
    }

    #[test]
    fn varint_rejects_truncation() {
        let mut buf = Vec::new();
        put_varint64(&mut buf, u64::MAX);
        for cut in 0..buf.len() {
            assert!(get_varint64(&buf[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn varint_rejects_overlong() {
        // Eleven continuation bytes can never terminate within the limit.
        let buf = [0x80u8; 11];
        assert!(get_varint64(&buf).is_err());
        // A 10-byte encoding whose final byte holds more than 1 bit
        // overflows 64 bits.
        let mut buf = vec![0x80u8; 9];
        buf.push(0x02);
        assert!(get_varint64(&buf).is_err());
    }

    #[test]
    fn length_prefixed_roundtrip() {
        let mut buf = Vec::new();
        put_length_prefixed_slice(&mut buf, b"hello");
        put_length_prefixed_slice(&mut buf, b"");
        put_length_prefixed_slice(&mut buf, &[0xaa; 300]);
        let (s, n) = get_length_prefixed_slice(&buf).unwrap();
        assert_eq!(s, b"hello");
        let (s2, n2) = get_length_prefixed_slice(&buf[n..]).unwrap();
        assert_eq!(s2, b"");
        let (s3, _) = get_length_prefixed_slice(&buf[n + n2..]).unwrap();
        assert_eq!(s3, &[0xaa; 300][..]);
    }

    #[test]
    fn length_prefixed_rejects_truncation() {
        let mut buf = Vec::new();
        put_length_prefixed_slice(&mut buf, b"hello");
        assert!(get_length_prefixed_slice(&buf[..buf.len() - 1]).is_err());
    }
}
