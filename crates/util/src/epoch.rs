//! Homegrown epoch-based memory reclamation.
//!
//! Replaces `crossbeam-epoch` for the one pattern this workspace needs:
//! readers pin an epoch around a short critical section (load a shared
//! pointer, clone the `Arc` behind it), writers unlink a pointer and
//! [`defer`] its destruction until every reader that might still see it
//! has unpinned.
//!
//! Scheme: a global epoch counter, a registry of per-thread
//! participants, and a garbage list tagged with retirement epochs.
//! Pinning publishes the observed global epoch with a `SeqCst` store
//! followed by a `SeqCst` fence (the fence orders the publication
//! before the critical section's pointer loads — the classic
//! store→load hazard). The epoch advances only when every pinned
//! participant has caught up to the current epoch, and garbage retired
//! at epoch `e` is freed once the global epoch reaches `e + 2`, at
//! which point no participant pinned at `e` (or earlier) can remain.
//!
//! Pinning is lock-free: registration takes a mutex once per thread,
//! after which [`pin`] touches only the thread's own slot. Collection
//! runs on the *deferral* (writer) side, keeping readers undisturbed.

use std::cell::Cell;
use std::marker::PhantomData;
use std::sync::atomic::{fence, AtomicBool, AtomicU64, Ordering::SeqCst};
use std::sync::{Arc, Mutex, OnceLock};

/// Slot value meaning "this participant is not in a critical section".
const NOT_PINNED: u64 = u64::MAX;

/// How much garbage accumulates before a deferral triggers collection.
const COLLECT_THRESHOLD: usize = 32;

/// One registered thread's published epoch.
struct Slot {
    /// Epoch the thread is pinned at, or [`NOT_PINNED`].
    epoch: AtomicU64,
    /// Set when the owning thread exits; the sweeper unregisters it.
    retired: AtomicBool,
}

type Garbage = Box<dyn FnOnce() + Send>;

struct Global {
    epoch: AtomicU64,
    slots: Mutex<Vec<Arc<Slot>>>,
    garbage: Mutex<Vec<(u64, Garbage)>>,
}

fn global() -> &'static Global {
    static GLOBAL: OnceLock<Global> = OnceLock::new();
    GLOBAL.get_or_init(|| Global {
        epoch: AtomicU64::new(0),
        slots: Mutex::new(Vec::new()),
        garbage: Mutex::new(Vec::new()),
    })
}

/// Per-thread participant handle, registered on first pin.
struct Handle {
    slot: Arc<Slot>,
    /// Pin nesting depth; only the outermost pin/unpin publishes.
    depth: Cell<usize>,
}

impl Drop for Handle {
    fn drop(&mut self) {
        self.slot.epoch.store(NOT_PINNED, SeqCst);
        self.slot.retired.store(true, SeqCst);
    }
}

thread_local! {
    static HANDLE: Handle = {
        let slot = Arc::new(Slot {
            epoch: AtomicU64::new(NOT_PINNED),
            retired: AtomicBool::new(false),
        });
        global()
            .slots
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(Arc::clone(&slot));
        Handle { slot, depth: Cell::new(0) }
    };
}

/// Keeps the calling thread pinned while alive. `!Send`: must drop on
/// the thread that pinned.
pub struct Guard {
    _not_send: PhantomData<*mut ()>,
}

/// Pins the current thread, blocking epoch advance past its published
/// epoch until the returned [`Guard`] drops. Reentrant; lock-free after
/// the thread's first call.
pub fn pin() -> Guard {
    HANDLE.with(|h| {
        if h.depth.get() == 0 {
            let e = global().epoch.load(SeqCst);
            h.slot.epoch.store(e, SeqCst);
            // Order the publication before any pointer load inside the
            // critical section; without this a reclaimer could miss us.
            fence(SeqCst);
        }
        h.depth.set(h.depth.get() + 1);
    });
    Guard {
        _not_send: PhantomData,
    }
}

impl Drop for Guard {
    fn drop(&mut self) {
        // try_with: a Guard may legally drop during thread teardown
        // after the TLS handle is gone (the handle's own Drop already
        // unpinned the slot).
        let _ = HANDLE.try_with(|h| {
            let d = h.depth.get() - 1;
            h.depth.set(d);
            if d == 0 {
                h.slot.epoch.store(NOT_PINNED, SeqCst);
            }
        });
    }
}

/// Defers `f` (typically a destructor) until every thread pinned at the
/// current epoch has unpinned. May run earlier deferrals inline.
pub fn defer(f: impl FnOnce() + Send + 'static) {
    let g = global();
    let e = g.epoch.load(SeqCst);
    let run_collect = {
        let mut garbage = g
            .garbage
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        garbage.push((e, Box::new(f)));
        garbage.len() >= COLLECT_THRESHOLD
    };
    if run_collect {
        collect();
    }
}

/// Tries to advance the epoch and frees all garbage that is provably
/// unreachable. Called automatically from [`defer`]; exposed for tests
/// and shutdown paths that want reclamation flushed promptly.
pub fn collect() {
    let g = global();
    {
        let mut slots = g
            .slots
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        slots.retain(|s| !s.retired.load(SeqCst));
        let cur = g.epoch.load(SeqCst);
        let all_caught_up = slots.iter().all(|s| {
            let e = s.epoch.load(SeqCst);
            e == NOT_PINNED || e == cur
        });
        if all_caught_up {
            g.epoch.store(cur + 1, SeqCst);
        }
    }
    let cur = g.epoch.load(SeqCst);
    let freed: Vec<Garbage> = {
        let mut garbage = g
            .garbage
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut freed = Vec::new();
        garbage.retain_mut(|(e, f)| {
            if *e + 2 <= cur {
                // Replace with a no-op so retain can move the real
                // closure out.
                freed.push(std::mem::replace(f, Box::new(|| ())));
                false
            } else {
                true
            }
        });
        freed
    };
    // Run destructors outside the garbage lock: they may defer more.
    for f in freed {
        f();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn pin_is_reentrant() {
        let a = pin();
        let b = pin();
        drop(a);
        drop(b);
    }

    /// Collects until `done` holds; other tests' transient pins can
    /// block any single advance, so retry.
    fn collect_until(done: impl Fn() -> bool) {
        for _ in 0..10_000 {
            if done() {
                return;
            }
            collect();
            std::thread::yield_now();
        }
        panic!("reclamation never converged");
    }

    #[test]
    fn deferred_work_eventually_runs() {
        let hits = Arc::new(AtomicUsize::new(0));
        for _ in 0..4 * COLLECT_THRESHOLD {
            let hits = Arc::clone(&hits);
            defer(move || {
                hits.fetch_add(1, SeqCst);
            });
        }
        let hits2 = Arc::clone(&hits);
        collect_until(move || hits2.load(SeqCst) > 0);
    }

    #[test]
    fn pinned_reader_blocks_reclamation() {
        let freed = Arc::new(AtomicUsize::new(0));
        let guard = pin();
        let pinned_at = global().epoch.load(SeqCst);
        {
            let freed = Arc::clone(&freed);
            defer(move || {
                freed.fetch_add(1, SeqCst);
            });
        }
        // While pinned, the epoch cannot advance two steps past us, so
        // our deferral must stay queued.
        collect();
        collect();
        assert!(global().epoch.load(SeqCst) <= pinned_at + 1);
        assert_eq!(freed.load(SeqCst), 0);
        drop(guard);
        let freed2 = Arc::clone(&freed);
        collect_until(move || freed2.load(SeqCst) == 1);
    }

    #[test]
    fn exiting_threads_unregister() {
        std::thread::spawn(|| {
            let _g = pin();
        })
        .join()
        .unwrap();
        // The exited thread must not block advance forever.
        let before = global().epoch.load(SeqCst);
        collect_until(|| global().epoch.load(SeqCst) > before);
    }
}
