//! Error type shared across the workspace.

use std::fmt;
use std::io;
use std::path::PathBuf;
use std::sync::Arc;

/// Result alias used throughout the cLSM crates.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors surfaced by the data store and its substrates.
///
/// I/O errors are wrapped in an [`Arc`] so that `Error` stays `Clone`;
/// a failed background flush must be reportable to every waiting writer.
#[derive(Debug, Clone)]
pub enum Error {
    /// An operating-system I/O failure.
    Io(Arc<io::Error>),
    /// On-disk data failed a checksum or structural validation.
    Corruption(String),
    /// A write-ahead log ends in a damaged or incomplete record.
    ///
    /// Unlike [`Error::Corruption`], a truncated WAL tail is *expected*
    /// after a crash: with asynchronous logging the last records may
    /// never have reached disk, and even a synchronous log can tear
    /// mid-`fsync`. Recovery treats everything before `offset` as valid
    /// and everything after it as lost.
    WalTruncated {
        /// Path of the damaged log file.
        file: PathBuf,
        /// Byte offset of the first damaged fragment; all records that
        /// end at or before this offset were recovered intact.
        offset: u64,
    },
    /// The manifest (or the `CURRENT` pointer naming it) failed
    /// structural validation during open.
    ///
    /// Distinct from [`Error::Corruption`] so that tooling can tell
    /// version-state damage (recoverable by manifest surgery or a
    /// backup `CURRENT`) from table/block damage (data loss).
    ManifestCorrupt {
        /// The damaged manifest or `CURRENT` file.
        file: PathBuf,
        /// What failed to validate.
        detail: String,
    },
    /// The caller passed an argument the store cannot honor.
    InvalidArgument(String),
    /// An internal invariant was violated; indicates a bug.
    Internal(String),
    /// The database is shutting down and cannot accept the operation.
    ShuttingDown,
    /// A network peer violated the wire protocol (bad frame length,
    /// unknown opcode, malformed payload). The connection that
    /// produced it is closed; other connections are unaffected.
    Protocol(String),
    /// An error reported by a remote server over the wire.
    ///
    /// Carries the remote error's [`ErrorKind`] (transported as its
    /// stable [`ErrorKind::code`]), its rendered message, and whether
    /// the remote side judged it retryable — [`Error::is_retryable`]
    /// needs the original `io::ErrorKind`, which does not cross the
    /// wire, so the verdict is computed server-side and shipped.
    Remote {
        /// The remote error's classification.
        kind: ErrorKind,
        /// The remote error's rendered message.
        message: String,
        /// The remote side's `is_retryable()` verdict.
        retryable: bool,
    },
}

/// Coarse classification of an [`Error`], for callers that dispatch on
/// the failure class rather than the payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorKind {
    /// An operating-system I/O failure ([`Error::Io`]).
    Io,
    /// Checksum or structural validation failure ([`Error::Corruption`]).
    Corruption,
    /// Benign torn log tail ([`Error::WalTruncated`]).
    WalTruncated,
    /// Manifest or `CURRENT` damage ([`Error::ManifestCorrupt`]).
    ManifestCorrupt,
    /// Caller error ([`Error::InvalidArgument`]).
    InvalidArgument,
    /// Internal invariant violation ([`Error::Internal`]).
    Internal,
    /// Shutdown in progress ([`Error::ShuttingDown`]).
    ShuttingDown,
    /// Wire-protocol violation ([`Error::Protocol`]).
    Protocol,
}

impl ErrorKind {
    /// Every kind, for exhaustive round-trip tests.
    pub const ALL: &'static [ErrorKind] = &[
        ErrorKind::Io,
        ErrorKind::Corruption,
        ErrorKind::WalTruncated,
        ErrorKind::ManifestCorrupt,
        ErrorKind::InvalidArgument,
        ErrorKind::Internal,
        ErrorKind::ShuttingDown,
        ErrorKind::Protocol,
    ];

    /// The stable wire code for this kind.
    ///
    /// These codes are part of the network protocol: a server maps an
    /// [`Error`] to `error.kind().code()` before shipping it, and the
    /// client reconstructs the kind with [`ErrorKind::from_code`].
    /// Codes are append-only — never renumber or reuse one.
    pub fn code(self) -> u16 {
        match self {
            ErrorKind::Io => 1,
            ErrorKind::Corruption => 2,
            ErrorKind::WalTruncated => 3,
            ErrorKind::InvalidArgument => 4,
            ErrorKind::Internal => 5,
            ErrorKind::ShuttingDown => 6,
            ErrorKind::ManifestCorrupt => 7,
            ErrorKind::Protocol => 8,
        }
    }

    /// The kind a stable wire code names, if any ([`ErrorKind::code`]'s
    /// inverse). Unknown codes — a newer peer's kinds — return `None`;
    /// callers degrade them to [`ErrorKind::Internal`] or reject.
    pub fn from_code(code: u16) -> Option<ErrorKind> {
        match code {
            1 => Some(ErrorKind::Io),
            2 => Some(ErrorKind::Corruption),
            3 => Some(ErrorKind::WalTruncated),
            4 => Some(ErrorKind::InvalidArgument),
            5 => Some(ErrorKind::Internal),
            6 => Some(ErrorKind::ShuttingDown),
            7 => Some(ErrorKind::ManifestCorrupt),
            8 => Some(ErrorKind::Protocol),
            _ => None,
        }
    }
}

impl Error {
    /// Builds a corruption error with the given human-readable detail.
    pub fn corruption(msg: impl Into<String>) -> Self {
        Error::Corruption(msg.into())
    }

    /// Builds an invalid-argument error with the given detail.
    pub fn invalid_argument(msg: impl Into<String>) -> Self {
        Error::InvalidArgument(msg.into())
    }

    /// Builds an internal error with the given detail.
    pub fn internal(msg: impl Into<String>) -> Self {
        Error::Internal(msg.into())
    }

    /// Builds a torn-log-tail error for `file` at byte `offset`.
    pub fn wal_truncated(file: impl Into<PathBuf>, offset: u64) -> Self {
        Error::WalTruncated {
            file: file.into(),
            offset,
        }
    }

    /// Builds a manifest-damage error for `file`.
    pub fn manifest_corrupt(file: impl Into<PathBuf>, detail: impl Into<String>) -> Self {
        Error::ManifestCorrupt {
            file: file.into(),
            detail: detail.into(),
        }
    }

    /// Builds a wire-protocol-violation error.
    pub fn protocol(msg: impl Into<String>) -> Self {
        Error::Protocol(msg.into())
    }

    /// Reconstructs a remote error from its wire form: the stable kind
    /// code ([`ErrorKind::code`]), the rendered message, and the remote
    /// side's retryability verdict. Unknown codes degrade to
    /// [`ErrorKind::Internal`] rather than failing the decode.
    pub fn from_wire(code: u16, message: impl Into<String>, retryable: bool) -> Self {
        Error::Remote {
            kind: ErrorKind::from_code(code).unwrap_or(ErrorKind::Internal),
            message: message.into(),
            retryable,
        }
    }

    /// Returns the coarse classification of this error.
    pub fn kind(&self) -> ErrorKind {
        match self {
            Error::Io(_) => ErrorKind::Io,
            Error::Corruption(_) => ErrorKind::Corruption,
            Error::WalTruncated { .. } => ErrorKind::WalTruncated,
            Error::ManifestCorrupt { .. } => ErrorKind::ManifestCorrupt,
            Error::InvalidArgument(_) => ErrorKind::InvalidArgument,
            Error::Internal(_) => ErrorKind::Internal,
            Error::ShuttingDown => ErrorKind::ShuttingDown,
            Error::Protocol(_) => ErrorKind::Protocol,
            Error::Remote { kind, .. } => *kind,
        }
    }

    /// Whether retrying the failed operation could plausibly succeed.
    ///
    /// Transient OS-level I/O failures (interrupted syscalls, momentary
    /// resource exhaustion) are retryable; corruption, torn logs, caller
    /// errors, internal bugs, and shutdown are not.
    pub fn is_retryable(&self) -> bool {
        match self {
            Error::Io(e) => matches!(
                e.kind(),
                io::ErrorKind::Interrupted
                    | io::ErrorKind::WouldBlock
                    | io::ErrorKind::TimedOut
                    | io::ErrorKind::ResourceBusy
            ),
            Error::Remote { retryable, .. } => *retryable,
            _ => false,
        }
    }

    /// The underlying [`io::ErrorKind`] when this is an I/O error.
    pub fn io_kind(&self) -> Option<io::ErrorKind> {
        match self {
            Error::Io(e) => Some(e.kind()),
            _ => None,
        }
    }

    /// Whether this error reports a missing file or directory.
    pub fn is_not_found(&self) -> bool {
        self.io_kind() == Some(io::ErrorKind::NotFound)
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "I/O error: {e}"),
            Error::Corruption(m) => write!(f, "corruption: {m}"),
            Error::WalTruncated { file, offset } => {
                write!(f, "WAL truncated: {} at offset {offset}", file.display())
            }
            Error::ManifestCorrupt { file, detail } => {
                write!(f, "manifest corrupt: {}: {detail}", file.display())
            }
            Error::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
            Error::Internal(m) => write!(f, "internal error: {m}"),
            Error::ShuttingDown => write!(f, "database is shutting down"),
            Error::Protocol(m) => write!(f, "protocol error: {m}"),
            Error::Remote { kind, message, .. } => {
                write!(f, "remote error ({kind:?}): {message}")
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e.as_ref()),
            _ => None,
        }
    }
}

impl From<io::Error> for Error {
    fn from(e: io::Error) -> Self {
        Error::Io(Arc::new(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = Error::corruption("bad block");
        assert_eq!(e.to_string(), "corruption: bad block");
        let e = Error::invalid_argument("empty key");
        assert_eq!(e.to_string(), "invalid argument: empty key");
        let e = Error::from(io::Error::other("boom"));
        assert!(e.to_string().contains("boom"));
        assert_eq!(Error::ShuttingDown.to_string(), "database is shutting down");
        let e = Error::wal_truncated("000007.log", 4096);
        assert_eq!(e.to_string(), "WAL truncated: 000007.log at offset 4096");
    }

    #[test]
    fn error_is_cloneable_and_sourced() {
        let e = Error::from(io::Error::new(io::ErrorKind::NotFound, "gone"));
        let e2 = e.clone();
        assert!(std::error::Error::source(&e2).is_some());
        assert!(std::error::Error::source(&Error::internal("x")).is_none());
    }

    #[test]
    fn kinds_and_retryability() {
        assert_eq!(Error::corruption("x").kind(), ErrorKind::Corruption);
        assert_eq!(
            Error::wal_truncated("a.log", 0).kind(),
            ErrorKind::WalTruncated
        );
        assert_eq!(Error::ShuttingDown.kind(), ErrorKind::ShuttingDown);
        assert_eq!(Error::internal("x").kind(), ErrorKind::Internal);

        let interrupted = Error::from(io::Error::new(io::ErrorKind::Interrupted, "eintr"));
        assert!(interrupted.is_retryable());
        let missing = Error::from(io::Error::new(io::ErrorKind::NotFound, "gone"));
        assert!(!missing.is_retryable());
        assert!(missing.is_not_found());
        assert!(!Error::corruption("x").is_retryable());
        assert!(!Error::wal_truncated("a.log", 0).is_retryable());
    }

    #[test]
    fn retryability_covers_every_kind() {
        // One representative error per kind: exactly the transient I/O
        // class (and a remote error that says so) is retryable.
        let by_kind: Vec<(Error, bool)> = vec![
            (
                Error::from(io::Error::new(io::ErrorKind::TimedOut, "slow")),
                true,
            ),
            (Error::from(io::Error::other("disk on fire")), false),
            (Error::corruption("bad block"), false),
            (Error::wal_truncated("a.log", 10), false),
            (Error::manifest_corrupt("MANIFEST-000001", "bad tag"), false),
            (Error::invalid_argument("empty key"), false),
            (Error::internal("bug"), false),
            (Error::ShuttingDown, false),
            (Error::protocol("bad opcode"), false),
            (
                Error::from_wire(ErrorKind::Io.code(), "remote eintr", true),
                true,
            ),
            (
                Error::from_wire(ErrorKind::Io.code(), "remote enospc", false),
                false,
            ),
        ];
        for (e, want) in by_kind {
            assert_eq!(e.is_retryable(), want, "{e}");
        }
    }

    #[test]
    fn wire_codes_round_trip_every_kind() {
        for &kind in ErrorKind::ALL {
            assert_eq!(ErrorKind::from_code(kind.code()), Some(kind), "{kind:?}");
        }
        // Codes are distinct (the round-trip above implies it, but make
        // the append-only contract explicit).
        let mut codes: Vec<u16> = ErrorKind::ALL.iter().map(|k| k.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), ErrorKind::ALL.len());
        // Unknown codes never panic and never alias a real kind.
        assert_eq!(ErrorKind::from_code(0), None);
        assert_eq!(ErrorKind::from_code(u16::MAX), None);
    }

    #[test]
    fn remote_errors_carry_kind_message_and_verdict() {
        let original = Error::corruption("block checksum mismatch");
        let wired = Error::from_wire(
            original.kind().code(),
            original.to_string(),
            original.is_retryable(),
        );
        assert_eq!(wired.kind(), ErrorKind::Corruption);
        assert!(!wired.is_retryable());
        assert!(wired.to_string().contains("block checksum mismatch"));
        // A code from a newer peer degrades to Internal, not a panic.
        let future = Error::from_wire(999, "unknown failure", false);
        assert_eq!(future.kind(), ErrorKind::Internal);
    }

    #[test]
    fn manifest_corrupt_is_typed() {
        let e = Error::manifest_corrupt("db/CURRENT", "not valid UTF-8");
        assert_eq!(e.kind(), ErrorKind::ManifestCorrupt);
        assert_eq!(
            e.to_string(),
            "manifest corrupt: db/CURRENT: not valid UTF-8"
        );
    }
}
