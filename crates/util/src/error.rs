//! Error type shared across the workspace.

use std::fmt;
use std::io;
use std::path::PathBuf;
use std::sync::Arc;

/// Result alias used throughout the cLSM crates.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors surfaced by the data store and its substrates.
///
/// I/O errors are wrapped in an [`Arc`] so that `Error` stays `Clone`;
/// a failed background flush must be reportable to every waiting writer.
#[derive(Debug, Clone)]
pub enum Error {
    /// An operating-system I/O failure.
    Io(Arc<io::Error>),
    /// On-disk data failed a checksum or structural validation.
    Corruption(String),
    /// A write-ahead log ends in a damaged or incomplete record.
    ///
    /// Unlike [`Error::Corruption`], a truncated WAL tail is *expected*
    /// after a crash: with asynchronous logging the last records may
    /// never have reached disk, and even a synchronous log can tear
    /// mid-`fsync`. Recovery treats everything before `offset` as valid
    /// and everything after it as lost.
    WalTruncated {
        /// Path of the damaged log file.
        file: PathBuf,
        /// Byte offset of the first damaged fragment; all records that
        /// end at or before this offset were recovered intact.
        offset: u64,
    },
    /// The caller passed an argument the store cannot honor.
    InvalidArgument(String),
    /// An internal invariant was violated; indicates a bug.
    Internal(String),
    /// The database is shutting down and cannot accept the operation.
    ShuttingDown,
}

/// Coarse classification of an [`Error`], for callers that dispatch on
/// the failure class rather than the payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorKind {
    /// An operating-system I/O failure ([`Error::Io`]).
    Io,
    /// Checksum or structural validation failure ([`Error::Corruption`]).
    Corruption,
    /// Benign torn log tail ([`Error::WalTruncated`]).
    WalTruncated,
    /// Caller error ([`Error::InvalidArgument`]).
    InvalidArgument,
    /// Internal invariant violation ([`Error::Internal`]).
    Internal,
    /// Shutdown in progress ([`Error::ShuttingDown`]).
    ShuttingDown,
}

impl Error {
    /// Builds a corruption error with the given human-readable detail.
    pub fn corruption(msg: impl Into<String>) -> Self {
        Error::Corruption(msg.into())
    }

    /// Builds an invalid-argument error with the given detail.
    pub fn invalid_argument(msg: impl Into<String>) -> Self {
        Error::InvalidArgument(msg.into())
    }

    /// Builds an internal error with the given detail.
    pub fn internal(msg: impl Into<String>) -> Self {
        Error::Internal(msg.into())
    }

    /// Builds a torn-log-tail error for `file` at byte `offset`.
    pub fn wal_truncated(file: impl Into<PathBuf>, offset: u64) -> Self {
        Error::WalTruncated {
            file: file.into(),
            offset,
        }
    }

    /// Returns the coarse classification of this error.
    pub fn kind(&self) -> ErrorKind {
        match self {
            Error::Io(_) => ErrorKind::Io,
            Error::Corruption(_) => ErrorKind::Corruption,
            Error::WalTruncated { .. } => ErrorKind::WalTruncated,
            Error::InvalidArgument(_) => ErrorKind::InvalidArgument,
            Error::Internal(_) => ErrorKind::Internal,
            Error::ShuttingDown => ErrorKind::ShuttingDown,
        }
    }

    /// Whether retrying the failed operation could plausibly succeed.
    ///
    /// Transient OS-level I/O failures (interrupted syscalls, momentary
    /// resource exhaustion) are retryable; corruption, torn logs, caller
    /// errors, internal bugs, and shutdown are not.
    pub fn is_retryable(&self) -> bool {
        match self {
            Error::Io(e) => matches!(
                e.kind(),
                io::ErrorKind::Interrupted
                    | io::ErrorKind::WouldBlock
                    | io::ErrorKind::TimedOut
                    | io::ErrorKind::ResourceBusy
            ),
            _ => false,
        }
    }

    /// The underlying [`io::ErrorKind`] when this is an I/O error.
    pub fn io_kind(&self) -> Option<io::ErrorKind> {
        match self {
            Error::Io(e) => Some(e.kind()),
            _ => None,
        }
    }

    /// Whether this error reports a missing file or directory.
    pub fn is_not_found(&self) -> bool {
        self.io_kind() == Some(io::ErrorKind::NotFound)
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "I/O error: {e}"),
            Error::Corruption(m) => write!(f, "corruption: {m}"),
            Error::WalTruncated { file, offset } => {
                write!(f, "WAL truncated: {} at offset {offset}", file.display())
            }
            Error::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
            Error::Internal(m) => write!(f, "internal error: {m}"),
            Error::ShuttingDown => write!(f, "database is shutting down"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e.as_ref()),
            _ => None,
        }
    }
}

impl From<io::Error> for Error {
    fn from(e: io::Error) -> Self {
        Error::Io(Arc::new(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = Error::corruption("bad block");
        assert_eq!(e.to_string(), "corruption: bad block");
        let e = Error::invalid_argument("empty key");
        assert_eq!(e.to_string(), "invalid argument: empty key");
        let e = Error::from(io::Error::other("boom"));
        assert!(e.to_string().contains("boom"));
        assert_eq!(Error::ShuttingDown.to_string(), "database is shutting down");
        let e = Error::wal_truncated("000007.log", 4096);
        assert_eq!(e.to_string(), "WAL truncated: 000007.log at offset 4096");
    }

    #[test]
    fn error_is_cloneable_and_sourced() {
        let e = Error::from(io::Error::new(io::ErrorKind::NotFound, "gone"));
        let e2 = e.clone();
        assert!(std::error::Error::source(&e2).is_some());
        assert!(std::error::Error::source(&Error::internal("x")).is_none());
    }

    #[test]
    fn kinds_and_retryability() {
        assert_eq!(Error::corruption("x").kind(), ErrorKind::Corruption);
        assert_eq!(
            Error::wal_truncated("a.log", 0).kind(),
            ErrorKind::WalTruncated
        );
        assert_eq!(Error::ShuttingDown.kind(), ErrorKind::ShuttingDown);
        assert_eq!(Error::internal("x").kind(), ErrorKind::Internal);

        let interrupted = Error::from(io::Error::new(io::ErrorKind::Interrupted, "eintr"));
        assert!(interrupted.is_retryable());
        let missing = Error::from(io::Error::new(io::ErrorKind::NotFound, "gone"));
        assert!(!missing.is_retryable());
        assert!(missing.is_not_found());
        assert!(!Error::corruption("x").is_retryable());
        assert!(!Error::wal_truncated("a.log", 0).is_retryable());
    }
}
