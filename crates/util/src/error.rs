//! Error type shared across the workspace.

use std::fmt;
use std::io;
use std::sync::Arc;

/// Result alias used throughout the cLSM crates.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors surfaced by the data store and its substrates.
///
/// I/O errors are wrapped in an [`Arc`] so that `Error` stays `Clone`;
/// a failed background flush must be reportable to every waiting writer.
#[derive(Debug, Clone)]
pub enum Error {
    /// An operating-system I/O failure.
    Io(Arc<io::Error>),
    /// On-disk data failed a checksum or structural validation.
    Corruption(String),
    /// The caller passed an argument the store cannot honor.
    InvalidArgument(String),
    /// An internal invariant was violated; indicates a bug.
    Internal(String),
    /// The database is shutting down and cannot accept the operation.
    ShuttingDown,
}

impl Error {
    /// Builds a corruption error with the given human-readable detail.
    pub fn corruption(msg: impl Into<String>) -> Self {
        Error::Corruption(msg.into())
    }

    /// Builds an invalid-argument error with the given detail.
    pub fn invalid_argument(msg: impl Into<String>) -> Self {
        Error::InvalidArgument(msg.into())
    }

    /// Builds an internal error with the given detail.
    pub fn internal(msg: impl Into<String>) -> Self {
        Error::Internal(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "I/O error: {e}"),
            Error::Corruption(m) => write!(f, "corruption: {m}"),
            Error::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
            Error::Internal(m) => write!(f, "internal error: {m}"),
            Error::ShuttingDown => write!(f, "database is shutting down"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e.as_ref()),
            _ => None,
        }
    }
}

impl From<io::Error> for Error {
    fn from(e: io::Error) -> Self {
        Error::Io(Arc::new(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = Error::corruption("bad block");
        assert_eq!(e.to_string(), "corruption: bad block");
        let e = Error::invalid_argument("empty key");
        assert_eq!(e.to_string(), "invalid argument: empty key");
        let e = Error::from(io::Error::other("boom"));
        assert!(e.to_string().contains("boom"));
        assert_eq!(Error::ShuttingDown.to_string(), "database is shutting down");
    }

    #[test]
    fn error_is_cloneable_and_sourced() {
        let e = Error::from(io::Error::new(io::ErrorKind::NotFound, "gone"));
        let e2 = e.clone();
        assert!(std::error::Error::source(&e2).is_some());
        assert!(std::error::Error::source(&Error::internal("x")).is_none());
    }
}
