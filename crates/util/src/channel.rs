//! Homegrown MPMC channel, replacing `crossbeam-channel` for the WAL
//! logging queue and test plumbing.
//!
//! Supports the subset this workspace uses: [`unbounded`] and
//! [`bounded`] construction, cloneable [`Sender`]s and [`Receiver`]s,
//! blocking [`Sender::send`] / [`Receiver::recv`], non-blocking
//! [`Receiver::try_recv`], and queue introspection ([`Sender::len`],
//! [`Receiver::is_empty`]). Disconnection matches crossbeam: dropping
//! every sender makes `recv` drain the queue then fail; dropping every
//! receiver makes `send` fail.
//!
//! Built on a mutex-protected `VecDeque` plus two condvars. The only
//! hot consumer is the single WAL logger thread, where group commit
//! amortizes the lock; this is not a general-purpose lock-free queue.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering::SeqCst};
use std::sync::{Arc, Condvar, Mutex, PoisonError};

/// Error from sending on a channel with no receivers; returns the
/// unsent message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error from receiving on an empty channel with no senders.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error from a non-blocking receive attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// Channel currently empty but senders remain.
    Empty,
    /// Channel empty and all senders dropped.
    Disconnected,
}

struct Shared<T> {
    queue: Mutex<VecDeque<T>>,
    /// Signals receivers that a message arrived or senders vanished.
    not_empty: Condvar,
    /// Signals bounded senders that space opened or receivers vanished.
    not_full: Condvar,
    /// `usize::MAX` means unbounded.
    capacity: usize,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

impl<T> Shared<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        self.queue.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Sending half of a channel.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// Receiving half of a channel.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates a channel with no capacity limit: sends never block.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(usize::MAX)
}

/// Creates a channel holding at most `cap` queued messages; sends block
/// while full. `cap` must be at least 1 (no rendezvous channels).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    assert!(cap >= 1, "zero-capacity channels are not supported");
    with_capacity(cap)
}

fn with_capacity<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        capacity,
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Enqueues `msg`, blocking while a bounded channel is full. Fails
    /// (returning the message) once every receiver is dropped.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let shared = &*self.shared;
        let mut queue = shared.lock();
        loop {
            if shared.receivers.load(SeqCst) == 0 {
                return Err(SendError(msg));
            }
            if queue.len() < shared.capacity {
                queue.push_back(msg);
                drop(queue);
                shared.not_empty.notify_one();
                return Ok(());
            }
            queue = shared
                .not_full
                .wait(queue)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.lock().len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.shared.lock().is_empty()
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.senders.fetch_add(1, SeqCst);
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.shared.senders.fetch_sub(1, SeqCst) == 1 {
            // Hold the lock so a receiver between its emptiness check
            // and its wait cannot miss this wakeup.
            let _queue = self.shared.lock();
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Dequeues a message, blocking while the channel is empty. Fails
    /// once the channel is empty *and* every sender is dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let shared = &*self.shared;
        let mut queue = shared.lock();
        loop {
            if let Some(msg) = queue.pop_front() {
                drop(queue);
                shared.not_full.notify_one();
                return Ok(msg);
            }
            if shared.senders.load(SeqCst) == 0 {
                return Err(RecvError);
            }
            queue = shared
                .not_empty
                .wait(queue)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Dequeues a message if one is ready, without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let shared = &*self.shared;
        let mut queue = shared.lock();
        match queue.pop_front() {
            Some(msg) => {
                drop(queue);
                shared.not_full.notify_one();
                Ok(msg)
            }
            None if shared.senders.load(SeqCst) == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.shared.lock().is_empty()
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.lock().len()
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.receivers.fetch_add(1, SeqCst);
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        if self.shared.receivers.fetch_sub(1, SeqCst) == 1 {
            let _queue = self.shared.lock();
            self.shared.not_full.notify_all();
        }
    }
}

impl<T> std::fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sender")
            .field("queued", &self.len())
            .finish()
    }
}

impl<T> std::fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Receiver")
            .field("queued", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn roundtrip_in_order() {
        let (tx, rx) = unbounded();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        assert_eq!(tx.len(), 100);
        for i in 0..100 {
            assert_eq!(rx.recv().unwrap(), i);
        }
        assert!(rx.is_empty());
    }

    #[test]
    fn try_recv_reports_state() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(7).unwrap();
        assert_eq!(rx.try_recv(), Ok(7));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn recv_drains_before_disconnect() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(5), Err(SendError(5)));
    }

    #[test]
    fn blocking_recv_wakes_on_send() {
        let (tx, rx) = unbounded();
        let h = std::thread::spawn(move || rx.recv().unwrap());
        std::thread::sleep(Duration::from_millis(20));
        tx.send(42u64).unwrap();
        assert_eq!(h.join().unwrap(), 42);
    }

    #[test]
    fn bounded_send_blocks_until_space() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let h = std::thread::spawn(move || {
            tx.send(2).unwrap(); // blocks until the 1 is consumed
            tx.len()
        });
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        assert!(h.join().unwrap() <= 1);
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn many_producers_one_consumer() {
        let (tx, rx) = unbounded();
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let tx = tx.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..1000u64 {
                    tx.send(t * 1000 + i).unwrap();
                }
            }));
        }
        drop(tx);
        for h in handles {
            h.join().unwrap();
        }
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
        }
        got.sort_unstable();
        assert_eq!(got.len(), 8000);
        assert_eq!(got[0], 0);
        assert_eq!(got[7999], 7999);
    }
}
