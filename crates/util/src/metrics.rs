//! Lock-free observability primitives: counters, gauges, and
//! thread-striped concurrent histograms behind a [`MetricsRegistry`].
//!
//! The store's hot paths (get/put on every thread) record latencies and
//! counts with **no locks and no shared cache-line contention**:
//!
//! - [`Counter`] and [`Gauge`] are single relaxed atomics — adequate
//!   for values bumped rarely or from one thread (flush counts, stall
//!   time).
//! - [`ConcurrentHistogram`] is the hot-path workhorse: samples land in
//!   one of [`STRIPES`] independent bucket arrays chosen per thread, so
//!   concurrent recorders on different threads touch disjoint cache
//!   lines. Recording is a handful of relaxed `fetch_add`s into the
//!   same log-bucket layout as [`Histogram`], and a snapshot folds all
//!   stripes into an ordinary [`Histogram`] for percentile queries.
//!
//! Registration happens once at startup (it takes a mutex); the
//! returned `Arc`'d primitives are then recorded through directly —
//! the registry is never touched on an operation path. Snapshots
//! ([`MetricsRegistry::snapshot`]) are read-only and render to
//! human-readable text or JSON.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering::Relaxed};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

use crate::histogram::{Histogram, NUM_BUCKETS};

/// Number of independent bucket arrays in a [`ConcurrentHistogram`].
///
/// Threads are assigned stripes round-robin; with more threads than
/// stripes, distinct threads share a stripe and contend only on its
/// relaxed atomics. 16 covers the paper's thread counts without
/// sharing.
pub const STRIPES: usize = 16;

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a counter at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

/// An instantaneous level that can move both ways (queue depths,
/// active-set occupancy).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Creates a gauge at zero.
    pub const fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    /// Sets the level.
    pub fn set(&self, v: i64) {
        self.0.store(v, Relaxed);
    }

    /// Moves the level up.
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Relaxed);
    }

    /// Moves the level down.
    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.0.load(Relaxed)
    }
}

/// One stripe's bucket array plus summary atomics. Separate heap
/// allocations per stripe keep recorders on different stripes off each
/// other's cache lines.
struct Stripe {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Stripe {
    fn new() -> Self {
        Stripe {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// Returns this thread's stripe slot, assigned round-robin on first
/// use.
fn stripe_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SLOT: usize = NEXT.fetch_add(1, Relaxed) % STRIPES;
    }
    SLOT.try_with(|s| *s).unwrap_or(0)
}

/// A histogram safe to record into from any number of threads
/// concurrently, with the same bucket layout (and thus the same
/// quantile error bound) as [`Histogram`].
///
/// # Examples
///
/// ```
/// use clsm_util::metrics::ConcurrentHistogram;
///
/// let h = ConcurrentHistogram::new();
/// h.record(250);
/// h.record(750);
/// let snap = h.snapshot();
/// assert_eq!(snap.count(), 2);
/// assert!(snap.percentile(99.0) >= 750);
/// ```
pub struct ConcurrentHistogram {
    stripes: Vec<Stripe>,
}

impl Default for ConcurrentHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl ConcurrentHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        ConcurrentHistogram {
            stripes: (0..STRIPES).map(|_| Stripe::new()).collect(),
        }
    }

    /// Records one sample. Lock-free: a few relaxed atomic adds on this
    /// thread's stripe.
    pub fn record(&self, value: u64) {
        let stripe = &self.stripes[stripe_index()];
        stripe.buckets[Histogram::bucket_index(value)].fetch_add(1, Relaxed);
        stripe.count.fetch_add(1, Relaxed);
        stripe.sum.fetch_add(value, Relaxed);
        stripe.min.fetch_min(value, Relaxed);
        stripe.max.fetch_max(value, Relaxed);
    }

    /// Records a duration as nanoseconds (saturating).
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Folds all stripes into a plain [`Histogram`] for querying.
    ///
    /// Concurrent recorders may land on either side of the fold; the
    /// result is a consistent-enough point-in-time view (each sample is
    /// counted exactly once across successive snapshots of a quiescent
    /// histogram).
    pub fn snapshot(&self) -> Histogram {
        let mut buckets = vec![0u64; NUM_BUCKETS];
        let mut count = 0u64;
        let mut sum = 0u64;
        let mut min = u64::MAX;
        let mut max = 0u64;
        for stripe in &self.stripes {
            for (acc, b) in buckets.iter_mut().zip(&stripe.buckets) {
                *acc += b.load(Relaxed);
            }
            count += stripe.count.load(Relaxed);
            sum = sum.saturating_add(stripe.sum.load(Relaxed));
            min = min.min(stripe.min.load(Relaxed));
            max = max.max(stripe.max.load(Relaxed));
        }
        Histogram::from_raw(buckets, count, sum, min, max)
    }

    /// Total samples recorded so far.
    pub fn count(&self) -> u64 {
        self.stripes.iter().map(|s| s.count.load(Relaxed)).sum()
    }
}

impl std::fmt::Debug for ConcurrentHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConcurrentHistogram")
            .field("count", &self.count())
            .finish()
    }
}

/// A gauge whose level is computed on demand (e.g. derived from oracle
/// state rather than maintained incrementally).
type GaugeFn = Box<dyn Fn() -> i64 + Send + Sync>;

enum GaugeSource {
    Stored(Arc<Gauge>),
    Computed(GaugeFn),
}

/// Named registry of metrics primitives.
///
/// Register once at startup, record through the returned `Arc`s (the
/// registry itself is never on a hot path), snapshot on demand.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<RegistryInner>,
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, GaugeSource>,
    histograms: BTreeMap<String, Arc<ConcurrentHistogram>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RegistryInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Registers (or fetches, if the name exists) a counter.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        Arc::clone(
            self.lock()
                .counters
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    /// Registers (or fetches) a stored gauge.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut inner = self.lock();
        match inner
            .gauges
            .entry(name.to_string())
            .or_insert_with(|| GaugeSource::Stored(Arc::new(Gauge::new())))
        {
            GaugeSource::Stored(g) => Arc::clone(g),
            GaugeSource::Computed(_) => {
                panic!("metric {name:?} already registered as a computed gauge")
            }
        }
    }

    /// Registers a gauge computed by `f` at snapshot time. Replaces any
    /// previous computed gauge of the same name.
    pub fn gauge_fn(&self, name: &str, f: impl Fn() -> i64 + Send + Sync + 'static) {
        self.lock()
            .gauges
            .insert(name.to_string(), GaugeSource::Computed(Box::new(f)));
    }

    /// Registers (or fetches) a concurrent histogram.
    pub fn histogram(&self, name: &str) -> Arc<ConcurrentHistogram> {
        Arc::clone(
            self.lock()
                .histograms
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(ConcurrentHistogram::new())),
        )
    }

    /// Folds several registries into one combined snapshot: counters
    /// and gauges with the same name are summed, histograms are merged
    /// at bucket level (so percentiles of the combined snapshot are
    /// exact, not approximations stitched from per-registry summaries).
    ///
    /// This is the aggregation path for sharded compositions, where
    /// each shard keeps its own registry and the umbrella store reports
    /// one combined view.
    pub fn merged_snapshot<'a>(
        registries: impl IntoIterator<Item = &'a MetricsRegistry>,
    ) -> MetricsSnapshot {
        let mut counters: BTreeMap<String, u64> = BTreeMap::new();
        let mut gauges: BTreeMap<String, i64> = BTreeMap::new();
        let mut histograms: BTreeMap<String, Histogram> = BTreeMap::new();
        for reg in registries {
            let inner = reg.lock();
            for (k, v) in &inner.counters {
                *counters.entry(k.clone()).or_default() += v.get();
            }
            for (k, v) in &inner.gauges {
                let level = match v {
                    GaugeSource::Stored(g) => g.get(),
                    GaugeSource::Computed(f) => f(),
                };
                *gauges.entry(k.clone()).or_default() += level;
            }
            for (k, v) in &inner.histograms {
                let h = v.snapshot();
                match histograms.entry(k.clone()) {
                    std::collections::btree_map::Entry::Vacant(e) => {
                        e.insert(h);
                    }
                    std::collections::btree_map::Entry::Occupied(mut e) => {
                        e.get_mut().merge(&h);
                    }
                }
            }
        }
        MetricsSnapshot {
            counters,
            gauges,
            histograms: histograms
                .iter()
                .map(|(k, h)| (k.clone(), HistogramSummary::from_histogram(h)))
                .collect(),
        }
    }

    /// Reads every metric into an immutable snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.lock();
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, v)| {
                    let level = match v {
                        GaugeSource::Stored(g) => g.get(),
                        GaugeSource::Computed(f) => f(),
                    };
                    (k.clone(), level)
                })
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), HistogramSummary::from_histogram(&v.snapshot())))
                .collect(),
        }
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.lock();
        f.debug_struct("MetricsRegistry")
            .field("counters", &inner.counters.len())
            .field("gauges", &inner.gauges.len())
            .field("histograms", &inner.histograms.len())
            .finish()
    }
}

/// Summary statistics of one histogram at snapshot time. Values are in
/// the histogram's native unit (nanoseconds for latency histograms).
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSummary {
    /// Number of samples.
    pub count: u64,
    /// Sum of all samples (saturating). Lets consumers compute exact
    /// aggregate time spent per stage (`mean * count` loses precision).
    pub sum: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Smallest sample.
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Median.
    pub p50: u64,
    /// 90th percentile (the paper's headline latency metric).
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
}

impl HistogramSummary {
    /// Summarizes a folded histogram.
    pub fn from_histogram(h: &Histogram) -> Self {
        HistogramSummary {
            count: h.count(),
            sum: h.sum(),
            mean: h.mean(),
            min: h.min(),
            max: h.max(),
            p50: h.percentile(50.0),
            p90: h.percentile(90.0),
            p99: h.percentile(99.0),
            p999: h.percentile(99.9),
        }
    }
}

/// Point-in-time view of every registered metric, renderable as text
/// or JSON.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge levels by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSummary>,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders an `f64` the way JSON expects (no NaN/Inf, which can't
/// appear here: means of non-negative u64 samples).
fn json_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

impl MetricsSnapshot {
    /// Renders a human-readable table.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, v) in &self.counters {
                out.push_str(&format!("  {name:<40} {v}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (name, v) in &self.gauges {
                out.push_str(&format!("  {name:<40} {v}\n"));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms (ns):\n");
            for (name, h) in &self.histograms {
                out.push_str(&format!(
                    "  {name:<40} count={} mean={:.0} min={} p50={} p90={} p99={} p999={} max={}\n",
                    h.count, h.mean, h.min, h.p50, h.p90, h.p99, h.p999, h.max
                ));
            }
        }
        if out.is_empty() {
            out.push_str("(no metrics registered)\n");
        }
        out
    }

    /// Renders a single JSON object:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {...}}`.
    pub fn to_json(&self) -> String {
        let counters = self
            .counters
            .iter()
            .map(|(k, v)| format!("\"{}\":{}", json_escape(k), v))
            .collect::<Vec<_>>()
            .join(",");
        let gauges = self
            .gauges
            .iter()
            .map(|(k, v)| format!("\"{}\":{}", json_escape(k), v))
            .collect::<Vec<_>>()
            .join(",");
        let histograms = self
            .histograms
            .iter()
            .map(|(k, h)| {
                format!(
                    "\"{}\":{{\"count\":{},\"sum\":{},\"mean\":{},\"min\":{},\"max\":{},\
                     \"p50\":{},\"p90\":{},\"p99\":{},\"p999\":{}}}",
                    json_escape(k),
                    h.count,
                    h.sum,
                    json_f64(h.mean),
                    h.min,
                    h.max,
                    h.p50,
                    h.p90,
                    h.p99,
                    h.p999
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"counters\":{{{counters}}},\"gauges\":{{{gauges}}},\"histograms\":{{{histograms}}}}}"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);

        let g = Gauge::new();
        g.set(10);
        g.add(5);
        g.sub(3);
        assert_eq!(g.get(), 12);
    }

    #[test]
    fn concurrent_histogram_matches_sequential() {
        let ch = ConcurrentHistogram::new();
        let mut reference = Histogram::new();
        for v in 1..=10_000u64 {
            ch.record(v);
            reference.record(v);
        }
        let snap = ch.snapshot();
        assert_eq!(snap.count(), reference.count());
        assert_eq!(snap.min(), reference.min());
        assert_eq!(snap.max(), reference.max());
        for p in [50.0, 90.0, 99.0] {
            assert_eq!(snap.percentile(p), reference.percentile(p));
        }
    }

    #[test]
    fn registry_snapshot_and_renderers() {
        let reg = MetricsRegistry::new();
        let ops = reg.counter("db.ops");
        ops.add(7);
        let depth = reg.gauge("queue.depth");
        depth.set(3);
        reg.gauge_fn("answer", || 42);
        let lat = reg.histogram("op.get.latency");
        lat.record(100);
        lat.record(200);

        let snap = reg.snapshot();
        assert_eq!(snap.counters["db.ops"], 7);
        assert_eq!(snap.gauges["queue.depth"], 3);
        assert_eq!(snap.gauges["answer"], 42);
        assert_eq!(snap.histograms["op.get.latency"].count, 2);

        let text = snap.to_text();
        assert!(text.contains("db.ops"));
        assert!(text.contains("count=2"));
        assert!(text.contains("p999="));
        assert!(text.contains("max=200"));

        let json = snap.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"db.ops\":7"));
        assert!(json.contains("\"answer\":42"));
        assert!(json.contains("\"count\":2"));
        assert!(json.contains("\"p999\":"));
        assert!(json.contains("\"max\":200"));
    }

    #[test]
    fn tail_columns_capture_outliers() {
        // A skewed distribution: p99 must miss the single huge outlier,
        // p999 and max must see it — that separation is the whole point
        // of the extra tail columns.
        let reg = MetricsRegistry::new();
        let lat = reg.histogram("op.tail.latency");
        for _ in 0..998 {
            lat.record(100);
        }
        lat.record(1_000_000);
        lat.record(1_000_000);

        let snap = reg.snapshot();
        let h = &snap.histograms["op.tail.latency"];
        assert_eq!(h.count, 1_000);
        assert!(h.p99 < h.p999, "p99 {} should miss the outlier", h.p99);
        assert!(h.p999 >= 1_000_000 / 2, "p999 should see the outlier");
        assert!(h.max >= h.p999);

        let text = snap.to_text();
        let line = text
            .lines()
            .find(|l| l.contains("op.tail.latency"))
            .expect("histogram line");
        assert!(line.contains("p999="), "missing p999 column: {line}");
        assert!(line.contains("max="), "missing max column: {line}");
        // Columns render in tail order on one line: p99 ≤ p999 ≤ max.
        let p99_at = line.find("p99=").unwrap();
        let p999_at = line.find("p999=").unwrap();
        let max_at = line.find("max=").unwrap();
        assert!(p99_at < p999_at && p999_at < max_at);

        let json = snap.to_json();
        assert!(json.contains(&format!("\"max\":{}", h.max)));
        assert!(json.contains(&format!("\"p999\":{}", h.p999)));
    }

    #[test]
    fn merged_snapshot_sums_and_merges() {
        let a = MetricsRegistry::new();
        let b = MetricsRegistry::new();
        a.counter("db.ops").add(3);
        b.counter("db.ops").add(4);
        a.counter("only.a").inc();
        a.gauge("queue.depth").set(2);
        b.gauge("queue.depth").set(5);
        a.gauge_fn("answer", || 42);
        // Histograms merge at bucket level: percentiles of the combined
        // snapshot must match recording every sample into one histogram.
        let ha = a.histogram("op.latency");
        let hb = b.histogram("op.latency");
        let mut reference = Histogram::new();
        for v in 1..=1000u64 {
            ha.record(v);
            reference.record(v);
        }
        for v in 5000..=6000u64 {
            hb.record(v);
            reference.record(v);
        }

        let merged = MetricsRegistry::merged_snapshot([&a, &b]);
        assert_eq!(merged.counters["db.ops"], 7);
        assert_eq!(merged.counters["only.a"], 1);
        assert_eq!(merged.gauges["queue.depth"], 7);
        assert_eq!(merged.gauges["answer"], 42);
        let h = &merged.histograms["op.latency"];
        assert_eq!(h.count, reference.count());
        assert_eq!(h.min, reference.min());
        assert_eq!(h.max, reference.max());
        assert_eq!(h.p50, reference.percentile(50.0));
        assert_eq!(h.p99, reference.percentile(99.0));

        // One registry merges to exactly its own snapshot.
        assert_eq!(MetricsRegistry::merged_snapshot([&a]), a.snapshot());
    }

    #[test]
    fn registered_names_are_shared() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("same");
        let b = reg.counter("same");
        a.inc();
        b.inc();
        assert_eq!(reg.snapshot().counters["same"], 2);
    }

    #[test]
    fn empty_snapshot_renders() {
        let snap = MetricsRegistry::new().snapshot();
        assert!(snap.to_text().contains("no metrics"));
        assert_eq!(
            snap.to_json(),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{}}"
        );
    }
}
