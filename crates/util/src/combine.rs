//! Lock-free combining queue for the group-commit write pipeline.
//!
//! Writers push their requests with a single CAS; the commit leader
//! claims *everything* pending with one atomic swap ([`CombiningQueue::pop_all`])
//! and processes the batch on the followers' behalf — the classic
//! flat-combining / leader-commit structure surveyed for LSM group
//! commit. Internally a Treiber stack with a pop-all consumer: pushes
//! prepend to an atomic head, `pop_all` swaps the head to null and
//! reverses the detached chain so the caller sees FIFO arrival order.
//!
//! Multi-producer, single-logical-consumer: many threads may push
//! concurrently, and any thread may call `pop_all` (the write pipeline
//! guarantees at most one leader at a time via its election bit, but
//! the queue itself is safe under concurrent `pop_all` too — each node
//! is handed to exactly one caller).

use std::ptr;
use std::sync::atomic::{AtomicPtr, Ordering};

struct Node<T> {
    value: T,
    next: *mut Node<T>,
}

/// A lock-free multi-producer queue whose consumer drains everything
/// pending in one atomic operation.
pub struct CombiningQueue<T> {
    head: AtomicPtr<Node<T>>,
}

impl<T> Default for CombiningQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> CombiningQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        CombiningQueue {
            head: AtomicPtr::new(ptr::null_mut()),
        }
    }

    /// Enqueues `value` (one CAS on the uncontended path).
    pub fn push(&self, value: T) {
        let node = Box::into_raw(Box::new(Node {
            value,
            next: ptr::null_mut(),
        }));
        let mut head = self.head.load(Ordering::Acquire);
        loop {
            // SAFETY: `node` came from Box::into_raw above and is not
            // yet reachable by any other thread.
            unsafe { (*node).next = head };
            match self
                .head
                .compare_exchange_weak(head, node, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return,
                Err(current) => head = current,
            }
        }
    }

    /// Detaches everything currently queued and returns it in FIFO
    /// (arrival) order. Pushes racing with the swap either make it into
    /// this drain or the next one — nothing is lost.
    pub fn pop_all(&self) -> Vec<T> {
        let mut node = self.head.swap(ptr::null_mut(), Ordering::AcqRel);
        let mut out = Vec::new();
        while !node.is_null() {
            // SAFETY: the swap made this chain exclusively ours; each
            // node was created by `push` via Box::into_raw.
            let boxed = unsafe { Box::from_raw(node) };
            node = boxed.next;
            out.push(boxed.value);
        }
        // The stack yields LIFO; reverse for arrival order.
        out.reverse();
        out
    }

    /// Whether anything is queued right now (advisory: the answer may
    /// be stale by the time the caller acts on it).
    pub fn is_empty(&self) -> bool {
        self.head.load(Ordering::Acquire).is_null()
    }
}

impl<T> Drop for CombiningQueue<T> {
    fn drop(&mut self) {
        drop(self.pop_all());
    }
}

// SAFETY: values are moved in by `push` and out by `pop_all`; the queue
// never aliases a T across threads, so it is Send/Sync whenever T: Send.
unsafe impl<T: Send> Send for CombiningQueue<T> {}
unsafe impl<T: Send> Sync for CombiningQueue<T> {}

impl<T> std::fmt::Debug for CombiningQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CombiningQueue")
            .field("empty", &self.is_empty())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn pop_all_preserves_arrival_order() {
        let q = CombiningQueue::new();
        assert!(q.is_empty());
        for i in 0..10 {
            q.push(i);
        }
        assert!(!q.is_empty());
        assert_eq!(q.pop_all(), (0..10).collect::<Vec<_>>());
        assert!(q.is_empty());
        assert_eq!(q.pop_all(), Vec::<i32>::new());
    }

    #[test]
    fn interleaved_push_and_drain() {
        let q = CombiningQueue::new();
        q.push(1);
        q.push(2);
        assert_eq!(q.pop_all(), vec![1, 2]);
        q.push(3);
        assert_eq!(q.pop_all(), vec![3]);
    }

    #[test]
    fn concurrent_producers_lose_nothing() {
        let q = Arc::new(CombiningQueue::new());
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                for i in 0..1000u64 {
                    q.push(t * 1000 + i);
                }
            }));
        }
        // A draining thread races the producers.
        let drainer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut got = Vec::new();
                for _ in 0..200 {
                    got.extend(q.pop_all());
                    std::thread::yield_now();
                }
                got
            })
        };
        for h in handles {
            h.join().unwrap();
        }
        let mut got = drainer.join().unwrap();
        got.extend(q.pop_all());
        got.sort_unstable();
        assert_eq!(got.len(), 8000);
        got.dedup();
        assert_eq!(got.len(), 8000, "duplicate delivery");
    }

    #[test]
    fn per_producer_fifo_is_preserved() {
        let q = Arc::new(CombiningQueue::new());
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                for i in 0..5000u64 {
                    q.push(i);
                }
            })
        };
        let mut seen: Vec<u64> = Vec::new();
        while seen.len() < 5000 {
            seen.extend(q.pop_all());
        }
        producer.join().unwrap();
        assert!(seen.windows(2).all(|w| w[0] < w[1]), "FIFO order violated");
    }

    #[test]
    fn drop_reclaims_queued_values() {
        let q = CombiningQueue::new();
        for i in 0..100 {
            q.push(Arc::new(i));
        }
        drop(q); // Miri/leak checkers would flag dropped nodes
    }
}
