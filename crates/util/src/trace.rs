//! Lock-free flight-recorder tracing: per-thread ring buffers of
//! timestamped binary events, merged on drain into a globally ordered
//! stream and exportable as Chrome trace-format JSON
//! (`chrome://tracing` / Perfetto).
//!
//! # Design
//!
//! The recorder is built for the cLSM hot paths, where an extra lock or
//! allocation would distort exactly the behavior being observed:
//!
//! - **Per-thread rings.** Each recording thread owns a fixed-size ring
//!   of 32-byte event slots. The owning thread is the only writer, so
//!   recording is a handful of relaxed/release stores — no CAS, no
//!   shared cache-line contention, no allocation (the ring is allocated
//!   once, on the thread's first event).
//! - **Seqlock slots.** Every slot carries a version word derived from
//!   the thread's event sequence number (odd while a write is in
//!   progress, even when complete). The drain re-checks the version
//!   around its field reads, so a concurrently overwritten slot is
//!   *detected and counted as dropped* rather than surfacing a torn
//!   event.
//! - **Per-thread sequence numbers.** Event `n` of a thread always has
//!   sequence `n`; the drain reconstructs it from the slot version.
//!   Strictly increasing sequences per thread prove the merged stream
//!   lost nothing silently — every gap is reported in the drain
//!   summary.
//! - **Disabled means free.** With tracing disabled (the default) every
//!   instrumentation site is one relaxed atomic load and a branch.
//!
//! # Event schema
//!
//! One event is `(ts_ns, seq, name-id, phase, arg)` packed into four
//! `u64` words: nanosecond timestamp since the process trace epoch,
//! per-thread sequence, interned name, phase (span begin/end or
//! instant), and a free-form argument (level number, byte count, …).
//!
//! # Usage
//!
//! ```
//! use clsm_util::trace::{self, TraceId};
//!
//! static MY_SPAN: TraceId = TraceId::new("example.work");
//!
//! trace::enable(1024);
//! {
//!     let _span = MY_SPAN.span(); // Begin now, End on drop
//!     MY_SPAN.instant(42);
//! }
//! let snapshot = trace::drain();
//! assert_eq!(snapshot.events.len(), 3);
//! let json = snapshot.to_chrome_json();
//! assert!(json.contains("\"example.work\""));
//! trace::disable();
//! ```

use std::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::{Duration, Instant};

/// Default per-thread ring capacity (events), used by
/// [`enable_default`]. 64 Ki events × 32 B = 2 MiB per thread.
pub const DEFAULT_RING_CAPACITY: usize = 64 * 1024;

/// Event phase, mirroring the Chrome trace-format phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Span begin (`"B"`).
    Begin,
    /// Span end (`"E"`).
    End,
    /// Instant event (`"i"`).
    Instant,
}

impl Phase {
    fn from_u8(v: u8) -> Phase {
        match v {
            0 => Phase::Begin,
            1 => Phase::End,
            _ => Phase::Instant,
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            Phase::Begin => 0,
            Phase::End => 1,
            Phase::Instant => 2,
        }
    }

    fn chrome_ph(self) -> char {
        match self {
            Phase::Begin => 'B',
            Phase::End => 'E',
            Phase::Instant => 'i',
        }
    }
}

// ---------------------------------------------------------------------------
// Clock
// ---------------------------------------------------------------------------

/// The process-wide trace epoch, fixed on first use. Shared with the
/// shared-exclusive lock's hold tracking and the stall watchdog so all
/// observability timestamps live on one axis.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process trace epoch (monotonic, never zero
/// after the first call from any thread).
pub fn now_ns() -> u64 {
    u64::try_from(epoch().elapsed().as_nanos())
        .unwrap_or(u64::MAX)
        .max(1)
}

// ---------------------------------------------------------------------------
// Per-thread ring
// ---------------------------------------------------------------------------

/// One event slot: a seqlock version plus the three payload words.
/// Exactly 32 bytes.
struct Slot {
    /// `2n + 1` while event `n` is being written, `2n + 2` once it is
    /// complete, `0` when the slot was never used.
    version: AtomicU64,
    ts_ns: AtomicU64,
    /// Interned name id (low 32 bits) and phase (bits 32..40).
    meta: AtomicU64,
    arg: AtomicU64,
}

fn pack_meta(id: u32, phase: Phase) -> u64 {
    (id as u64) | ((phase.as_u8() as u64) << 32)
}

fn unpack_meta(meta: u64) -> (u32, Phase) {
    (meta as u32, Phase::from_u8((meta >> 32) as u8))
}

/// A thread's event ring. The owning thread is the only writer; drains
/// read concurrently through the per-slot seqlock.
struct Ring {
    slots: Box<[Slot]>,
    /// Number of events ever recorded by the owner; published with
    /// Release after each slot write.
    head: AtomicU64,
    /// Drain-assigned stable thread index (used as the Chrome `tid`).
    thread_index: u32,
    thread_name: String,
}

impl Ring {
    fn new(capacity: usize, thread_index: u32, thread_name: String) -> Ring {
        Ring {
            slots: (0..capacity.max(2))
                .map(|_| Slot {
                    version: AtomicU64::new(0),
                    ts_ns: AtomicU64::new(0),
                    meta: AtomicU64::new(0),
                    arg: AtomicU64::new(0),
                })
                .collect(),
            head: AtomicU64::new(0),
            thread_index,
            thread_name,
        }
    }

    /// Records one event. Must only be called by the owning thread.
    fn push(&self, ts_ns: u64, id: u32, phase: Phase, arg: u64) {
        let seq = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        // Seqlock write protocol: odd version first, fence, payload,
        // then the even version with Release. A concurrent drain that
        // observes mismatched versions discards the slot.
        slot.version.store(seq * 2 + 1, Ordering::Relaxed);
        fence(Ordering::Release);
        slot.ts_ns.store(ts_ns, Ordering::Relaxed);
        slot.meta.store(pack_meta(id, phase), Ordering::Relaxed);
        slot.arg.store(arg, Ordering::Relaxed);
        slot.version.store(seq * 2 + 2, Ordering::Release);
        self.head.store(seq + 1, Ordering::Release);
    }

    /// Reads every intact event still in the ring; returns
    /// `(events, recorded_total)`. Events overwritten (ring wrap) or
    /// mid-write are simply absent — the caller derives the drop count.
    fn drain(&self) -> (Vec<TraceEvent>, u64) {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let first = head.saturating_sub(cap);
        let mut out = Vec::with_capacity((head - first) as usize);
        for seq in first..head {
            let slot = &self.slots[(seq % cap) as usize];
            let want = seq * 2 + 2;
            let v1 = slot.version.load(Ordering::Acquire);
            if v1 != want {
                continue; // overwritten by a newer event, or mid-write
            }
            let ts_ns = slot.ts_ns.load(Ordering::Relaxed);
            let meta = slot.meta.load(Ordering::Relaxed);
            let arg = slot.arg.load(Ordering::Relaxed);
            fence(Ordering::Acquire);
            if slot.version.load(Ordering::Relaxed) != want {
                continue; // overwritten while we were reading
            }
            let (id, phase) = unpack_meta(meta);
            out.push(TraceEvent {
                ts_ns,
                thread: self.thread_index,
                seq,
                name_id: id,
                phase,
                arg,
            });
        }
        (out, head)
    }
}

// ---------------------------------------------------------------------------
// Global registry
// ---------------------------------------------------------------------------

struct Registry {
    enabled: AtomicBool,
    /// Ring capacity for threads that register while enabled.
    capacity: AtomicUsize,
    rings: Mutex<Vec<Arc<Ring>>>,
    /// Interned event names; a [`TraceId`] caches its index here.
    names: Mutex<Vec<&'static str>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        enabled: AtomicBool::new(false),
        capacity: AtomicUsize::new(DEFAULT_RING_CAPACITY),
        rings: Mutex::new(Vec::new()),
        names: Mutex::new(Vec::new()),
    })
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

thread_local! {
    /// This thread's ring, created on its first event after enable.
    static THREAD_RING: std::cell::RefCell<Option<Arc<Ring>>> =
        const { std::cell::RefCell::new(None) };
}

/// Turns the recorder on with `capacity` event slots per thread.
/// Threads allocate their ring lazily on their first event. Re-enabling
/// keeps previously registered rings (and their events).
pub fn enable(capacity: usize) {
    let reg = registry();
    epoch(); // pin the clock before the first event
    reg.capacity.store(capacity.max(2), Ordering::Relaxed);
    reg.enabled.store(true, Ordering::Release);
}

/// [`enable`] with [`DEFAULT_RING_CAPACITY`].
pub fn enable_default() {
    enable(DEFAULT_RING_CAPACITY);
}

/// Turns the recorder off. Already-recorded events stay drainable.
pub fn disable() {
    registry().enabled.store(false, Ordering::Release);
}

/// Whether the recorder is currently on.
pub fn is_enabled() -> bool {
    registry().enabled.load(Ordering::Relaxed)
}

/// Records one raw event on the calling thread's ring (creating and
/// registering the ring on first use). Does **not** check the enabled
/// flag — span guards decide that at begin time so begin/end pairs stay
/// balanced across a mid-span disable.
fn record(id: u32, phase: Phase, arg: u64) {
    let ts = now_ns();
    let res = THREAD_RING.try_with(|cell| {
        let mut slot = cell.borrow_mut();
        if slot.is_none() {
            let reg = registry();
            let mut rings = lock(&reg.rings);
            let index = rings.len() as u32;
            let name = std::thread::current()
                .name()
                .map_or_else(|| format!("thread-{index}"), str::to_string);
            let ring = Arc::new(Ring::new(reg.capacity.load(Ordering::Relaxed), index, name));
            rings.push(Arc::clone(&ring));
            *slot = Some(ring);
        }
        slot.as_ref().map(Arc::clone)
    });
    if let Ok(Some(ring)) = res {
        ring.push(ts, id, phase, arg);
    }
}

/// An interned event/span name, intended as a `static` at each
/// instrumentation site so the hot path pays one atomic load for the
/// id and one for the enabled flag.
pub struct TraceId {
    name: &'static str,
    id: OnceLock<u32>,
}

impl TraceId {
    /// Creates an id for `name` (interned on first use).
    pub const fn new(name: &'static str) -> TraceId {
        TraceId {
            name,
            id: OnceLock::new(),
        }
    }

    fn id(&self) -> u32 {
        *self.id.get_or_init(|| {
            let mut names = lock(&registry().names);
            if let Some(i) = names.iter().position(|n| *n == self.name) {
                i as u32
            } else {
                names.push(self.name);
                (names.len() - 1) as u32
            }
        })
    }

    /// Starts a span: records `Begin` now and `End` when the returned
    /// guard drops. A no-op (one load + branch) while disabled.
    #[inline]
    pub fn span(&self) -> SpanGuard<'_> {
        self.span_with(0)
    }

    /// [`TraceId::span`] carrying an argument on the begin event.
    #[inline]
    pub fn span_with(&self, arg: u64) -> SpanGuard<'_> {
        let active = is_enabled();
        if active {
            record(self.id(), Phase::Begin, arg);
        }
        SpanGuard { id: self, active }
    }

    /// Records an instant event. A no-op while disabled.
    #[inline]
    pub fn instant(&self, arg: u64) {
        if is_enabled() {
            record(self.id(), Phase::Instant, arg);
        }
    }
}

impl std::fmt::Debug for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("TraceId").field(&self.name).finish()
    }
}

/// RAII span: records the `End` event on drop (see [`TraceId::span`]).
#[must_use = "the span ends when the guard is dropped"]
pub struct SpanGuard<'a> {
    id: &'a TraceId,
    active: bool,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if self.active {
            record(self.id.id(), Phase::End, 0);
        }
    }
}

// ---------------------------------------------------------------------------
// Drain + export
// ---------------------------------------------------------------------------

/// One merged event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Nanoseconds since the process trace epoch.
    pub ts_ns: u64,
    /// Stable index of the recording thread.
    pub thread: u32,
    /// Per-thread sequence number (strictly increasing, gap-free unless
    /// the ring wrapped).
    pub seq: u64,
    /// Index into [`TraceSnapshot::names`].
    pub name_id: u32,
    /// Span begin/end or instant.
    pub phase: Phase,
    /// Free-form argument (level number, byte count, magnitude…).
    pub arg: u64,
}

/// Per-thread accounting of one drain: how much was recorded vs. how
/// much survived in the ring. `dropped > 0` means the ring wrapped (or
/// a slot was caught mid-write) — loss is always reported, never
/// silent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadDrainSummary {
    /// Stable thread index (the Chrome `tid`).
    pub thread: u32,
    /// The thread's name at registration time.
    pub name: String,
    /// Events the thread ever recorded.
    pub recorded: u64,
    /// Events returned by this drain.
    pub returned: u64,
    /// Events evicted by ring wrap-around (oldest first) or skipped as
    /// in-flight: `recorded - returned`.
    pub dropped: u64,
}

/// A merged, globally ordered view of every thread's ring.
#[derive(Debug, Clone, Default)]
pub struct TraceSnapshot {
    /// Events ordered by `(ts_ns, thread, seq)`.
    pub events: Vec<TraceEvent>,
    /// Interned names; `events[i].name_id` indexes this.
    pub names: Vec<&'static str>,
    /// Per-thread drain accounting (includes threads whose events were
    /// all evicted — loss stays visible).
    pub threads: Vec<ThreadDrainSummary>,
}

/// Snapshots and merges every thread's ring into a globally ordered
/// event stream. Rings keep their contents (a later drain returns the
/// same events plus newer ones, minus any evicted by wrap-around).
pub fn drain() -> TraceSnapshot {
    let reg = registry();
    let rings: Vec<Arc<Ring>> = lock(&reg.rings).iter().map(Arc::clone).collect();
    let names = lock(&reg.names).clone();
    let mut events = Vec::new();
    let mut threads = Vec::with_capacity(rings.len());
    for ring in &rings {
        let (mut evs, recorded) = ring.drain();
        threads.push(ThreadDrainSummary {
            thread: ring.thread_index,
            name: ring.thread_name.clone(),
            recorded,
            returned: evs.len() as u64,
            dropped: recorded - evs.len() as u64,
        });
        events.append(&mut evs);
    }
    events.sort_by_key(|e| (e.ts_ns, e.thread, e.seq));
    TraceSnapshot {
        events,
        names,
        threads,
    }
}

impl TraceSnapshot {
    /// The event's interned name.
    pub fn name_of(&self, e: &TraceEvent) -> &'static str {
        self.names.get(e.name_id as usize).copied().unwrap_or("?")
    }

    /// Total events dropped across all threads (ring wrap-around).
    pub fn total_dropped(&self) -> u64 {
        self.threads.iter().map(|t| t.dropped).sum()
    }

    /// Renders Chrome trace-format JSON (the "JSON array format" with a
    /// `traceEvents` wrapper), loadable in `chrome://tracing` and
    /// Perfetto. Timestamps are microseconds with nanosecond precision;
    /// one event per line, which keeps the file greppable and lets
    /// `clsm-doctor --replay` parse it without a JSON library.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 96 + 1024);
        out.push_str("{\"traceEvents\":[\n");
        out.push_str("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"clsm\"}}");
        for t in &self.threads {
            out.push_str(&format!(
                ",\n{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\"args\":{{\"name\":\"{}\"}}}}",
                t.thread,
                json_escape(&t.name)
            ));
        }
        for e in &self.events {
            let ts_us = e.ts_ns as f64 / 1000.0;
            let ph = e.phase.chrome_ph();
            out.push_str(&format!(
                ",\n{{\"name\":\"{}\",\"ph\":\"{}\",\"pid\":1,\"tid\":{},\"ts\":{:.3}",
                json_escape(self.name_of(e)),
                ph,
                e.thread,
                ts_us
            ));
            if e.phase == Phase::Instant {
                out.push_str(",\"s\":\"t\"");
            }
            if e.arg != 0 || e.phase == Phase::Instant {
                out.push_str(&format!(",\"args\":{{\"arg\":{}}}", e.arg));
            }
            out.push('}');
        }
        out.push_str("\n]}\n");
        out
    }

    /// Per-name span statistics computed by matching begin/end pairs on
    /// each thread: `(name, count, total, max)`. Unmatched begins (span
    /// still open at drain time) are ignored.
    pub fn span_stats(&self) -> Vec<SpanStat> {
        use std::collections::HashMap;
        // (thread, name_id) -> stack of begin timestamps.
        let mut open: HashMap<(u32, u32), Vec<u64>> = HashMap::new();
        let mut stats: HashMap<u32, SpanStat> = HashMap::new();
        for e in &self.events {
            match e.phase {
                Phase::Begin => open.entry((e.thread, e.name_id)).or_default().push(e.ts_ns),
                Phase::End => {
                    if let Some(begin) = open
                        .get_mut(&(e.thread, e.name_id))
                        .and_then(std::vec::Vec::pop)
                    {
                        let d = Duration::from_nanos(e.ts_ns.saturating_sub(begin));
                        let s = stats.entry(e.name_id).or_insert_with(|| SpanStat {
                            name: self.name_of(e),
                            count: 0,
                            total: Duration::ZERO,
                            max: Duration::ZERO,
                        });
                        s.count += 1;
                        s.total += d;
                        s.max = s.max.max(d);
                    }
                }
                Phase::Instant => {}
            }
        }
        let mut out: Vec<SpanStat> = stats.into_values().collect();
        out.sort_by_key(|s| std::cmp::Reverse(s.total));
        out
    }
}

/// Aggregated duration statistics of one span name (see
/// [`TraceSnapshot::span_stats`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanStat {
    /// The span's interned name.
    pub name: &'static str,
    /// Completed begin/end pairs.
    pub count: u64,
    /// Summed duration.
    pub total: Duration,
    /// Longest single span.
    pub max: Duration,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // The recorder is process-global; tests in this module serialize on
    // a lock so enable/disable/drain calls do not interleave.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(PoisonError::into_inner)
    }

    static SPAN_A: TraceId = TraceId::new("test.span_a");
    static INSTANT_B: TraceId = TraceId::new("test.instant_b");

    #[test]
    fn disabled_recorder_records_nothing() {
        let _g = serial();
        disable();
        let before = drain().events.len();
        {
            let _s = SPAN_A.span();
            INSTANT_B.instant(7);
        }
        assert_eq!(drain().events.len(), before);
    }

    #[test]
    fn spans_and_instants_roundtrip() {
        let _g = serial();
        enable(1024);
        let before = drain()
            .events
            .iter()
            .filter(|e| e.arg == 0xabcd || e.arg == 0xdcba)
            .count();
        {
            let _s = SPAN_A.span_with(0xabcd);
            INSTANT_B.instant(0xdcba);
        }
        let snap = drain();
        disable();
        let begin = snap
            .events
            .iter()
            .find(|e| e.phase == Phase::Begin && e.arg == 0xabcd)
            .expect("begin event");
        assert_eq!(snap.name_of(begin), "test.span_a");
        let inst = snap
            .events
            .iter()
            .find(|e| e.phase == Phase::Instant && e.arg == 0xdcba)
            .expect("instant event");
        assert_eq!(snap.name_of(inst), "test.instant_b");
        assert!(before <= 2, "stale events from other runs are bounded");
        // The end follows the begin on the same thread.
        let end = snap
            .events
            .iter()
            .find(|e| e.phase == Phase::End && e.thread == begin.thread && e.seq > begin.seq)
            .expect("end event");
        assert!(end.ts_ns >= begin.ts_ns);
    }

    #[test]
    fn chrome_json_is_wellformed_and_one_event_per_line() {
        let _g = serial();
        enable(1024);
        {
            let _s = SPAN_A.span();
            INSTANT_B.instant(1);
        }
        let snap = drain();
        disable();
        let json = snap.to_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":[\n"));
        assert!(json.trim_end().ends_with("]}"));
        assert!(json.contains("\"ph\":\"B\""));
        assert!(json.contains("\"ph\":\"E\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"thread_name\""));
        // Every event line is itself a JSON object.
        for line in json.lines().skip(1) {
            let line = line.trim_end_matches(&[',', '\n'][..]);
            if line.starts_with('{') {
                assert!(line.ends_with('}'), "line not self-contained: {line}");
            }
        }
    }

    #[test]
    fn span_stats_match_pairs() {
        let _g = serial();
        enable(1024);
        for _ in 0..3 {
            let _s = SPAN_A.span();
            std::thread::sleep(Duration::from_millis(1));
        }
        let snap = drain();
        disable();
        let stat = snap
            .span_stats()
            .into_iter()
            .find(|s| s.name == "test.span_a")
            .expect("span stat");
        assert!(stat.count >= 3);
        assert!(stat.max >= Duration::from_millis(1));
        assert!(stat.total >= stat.max);
    }

    #[test]
    fn now_ns_is_monotone_and_nonzero() {
        let a = now_ns();
        let b = now_ns();
        assert!(a >= 1);
        assert!(b >= a);
    }
}
