//! Timestamp oracle implementing Algorithm 2 of the cLSM paper.
//!
//! Multi-versioning machinery: a global `timeCounter`, the `Active` set
//! of timestamps that have been handed to writers but whose writes may
//! not be visible yet, the monotone `snapTime` high-water mark, and the
//! registry of live snapshots consulted by the merge for version GC.
//!
//! The two races the paper illustrates (Figures 3 and 4) are closed
//! here exactly as in the paper:
//!
//! - `getSnap` picks a timestamp strictly below every *active* put
//!   (Figure 3): a snapshot never chooses a time at which a concurrent
//!   put may still materialize.
//! - `getTS` re-checks `snapTime` after registering in `Active` and
//!   rolls back if its timestamp no longer exceeds it (Figure 4), while
//!   `getSnap` publishes `snapTime` *before* validating the active set.
//!   Whichever of the two observes the other first forces a consistent
//!   outcome.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use crate::trace::TraceId;

/// Flight-recorder event: one `getTS` rollback retry (Figure 4's race
/// taken). The argument carries the rolled-back timestamp.
static T_GETTS_ROLLBACK: TraceId = TraceId::new("oracle.getTS.rollback");
/// Flight-recorder span: `getSnap` waiting out in-flight writes at or
/// below its chosen time (the `Active`-min wait).
static T_SNAP_WAIT: TraceId = TraceId::new("oracle.getSnap.active_wait");

/// Default number of slots in the active set; must comfortably exceed
/// the number of concurrently writing threads.
const DEFAULT_ACTIVE_SLOTS: usize = 256;

/// Slots per stripe: one 64-byte cache line of `u64` slots.
const STRIPE_SLOTS: usize = 8;

/// One cache line of `Active`-set slots. The alignment is the point:
/// two threads claiming slots in different stripes never bounce the
/// same line between cores.
#[repr(align(64))]
#[derive(Debug)]
struct Stripe {
    slots: [AtomicU64; STRIPE_SLOTS],
}

impl Stripe {
    fn new() -> Stripe {
        Stripe {
            slots: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// Lock-free set of in-flight put timestamps (the paper's `Active`).
///
/// The slots are grouped into cache-line-aligned stripes. A writer
/// claims an empty slot by CAS, starting in its *home stripe* (picked
/// by [`crate::tid::thread_index`]), and overflows into neighboring
/// stripes only when its home stripe is full — so under normal load
/// (slot capacity exceeding writer count) concurrent `add`/`remove`
/// touch disjoint cache lines instead of contending on one CAS line.
/// `find_min` scans all stripes. Timestamps are unique and nonzero, so
/// zero marks an empty slot.
///
/// [`ActiveSet::new_unstriped`] keeps the pre-striping probe policy
/// (flat timestamp-hash start, no thread affinity) behind the same
/// API: the two are semantically identical — the probe start only
/// affects cache behavior — and the stress tests run against both to
/// prove it.
#[derive(Debug)]
pub struct ActiveSet {
    stripes: Box<[Stripe]>,
    /// `true` → thread-striped probe starts; `false` → the legacy
    /// flat hash-probe shim (kill-test / ablation baseline).
    striped: bool,
}

/// Handle returned by [`ActiveSet::add`]; pass it back to
/// [`ActiveSet::remove`] when the write becomes visible. Carries the
/// flat slot index, so removal is one store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ActiveTicket(usize);

impl ActiveSet {
    /// Creates a set with at least `slots` capacity (rounded up to
    /// whole cache-line stripes).
    pub fn new(slots: usize) -> Self {
        Self::with_policy(slots, true)
    }

    /// The single-set shim: identical slot array and claim/scan
    /// semantics, but probes start from a flat hash of the timestamp
    /// (the pre-striping policy) instead of the caller's home stripe.
    /// Exists so the stripe-invariant stress tests can demonstrate
    /// semantic equivalence of the two layouts.
    pub fn new_unstriped(slots: usize) -> Self {
        Self::with_policy(slots, false)
    }

    fn with_policy(slots: usize, striped: bool) -> Self {
        let stripes = slots.max(1).div_ceil(STRIPE_SLOTS);
        ActiveSet {
            stripes: (0..stripes).map(|_| Stripe::new()).collect(),
            striped,
        }
    }

    /// Total slot capacity (a multiple of the stripe width).
    pub fn capacity(&self) -> usize {
        self.stripes.len() * STRIPE_SLOTS
    }

    fn slot(&self, flat: usize) -> &AtomicU64 {
        &self.stripes[flat / STRIPE_SLOTS].slots[flat % STRIPE_SLOTS]
    }

    /// Registers `ts` and returns a removal ticket.
    ///
    /// Spins if all slots are occupied, which cannot happen as long as
    /// the slot count exceeds the number of writer threads.
    pub fn add(&self, ts: u64) -> ActiveTicket {
        debug_assert_ne!(ts, 0, "timestamp 0 is reserved for empty slots");
        let capacity = self.capacity();
        let start = if self.striped {
            // Home stripe by thread: repeated adds from one thread stay
            // on one cache line, and different threads (up to the
            // stripe count) claim on different lines.
            (crate::tid::thread_index() % self.stripes.len()) * STRIPE_SLOTS
        } else {
            (ts as usize).wrapping_mul(0x9e37_79b9) % capacity
        };
        let mut i = start;
        loop {
            // SeqCst: `add` must be globally ordered against `getSnap`'s
            // `snapTime` publication (see module docs).
            if self
                .slot(i)
                .compare_exchange(0, ts, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok()
            {
                return ActiveTicket(i);
            }
            i = (i + 1) % capacity;
            if i == start {
                std::thread::yield_now();
            }
        }
    }

    /// Removes the timestamp registered under `ticket`.
    pub fn remove(&self, ticket: ActiveTicket) {
        self.slot(ticket.0).store(0, Ordering::SeqCst);
    }

    /// Returns the minimum active timestamp, or `None` when empty.
    pub fn find_min(&self) -> Option<u64> {
        let mut min = u64::MAX;
        for stripe in self.stripes.iter() {
            for slot in &stripe.slots {
                let v = slot.load(Ordering::SeqCst);
                if v != 0 && v < min {
                    min = v;
                }
            }
        }
        (min != u64::MAX).then_some(min)
    }

    /// Returns `true` when no timestamps are registered.
    pub fn is_empty(&self) -> bool {
        self.find_min().is_none()
    }

    /// Number of currently registered timestamps (occupied slots) —
    /// a write-pressure gauge, not a synchronization primitive.
    pub fn len(&self) -> usize {
        self.stripes
            .iter()
            .flat_map(|s| s.slots.iter())
            .filter(|s| s.load(Ordering::Relaxed) != 0)
            .count()
    }
}

/// A write timestamp together with its active-set ticket.
///
/// The holder must call [`TimestampOracle::publish`] once the write is
/// visible in the in-memory component (Algorithm 2, `put` line 5) —
/// dropping it without publishing would wedge snapshot creation.
#[derive(Debug)]
pub struct WriteStamp {
    /// The acquired timestamp.
    pub ts: u64,
    ticket: ActiveTicket,
}

/// A contiguous block of write timestamps `[base, base + len)` acquired
/// with one `fetch_add` (the group-commit amortization: one counter
/// round-trip and one `Active`-set registration cover N writes).
///
/// Only `base` is registered in the `Active` set: `getSnap` picks a
/// time strictly below the minimum active stamp, so holding the block's
/// minimum active shields every stamp in the block. The holder must
/// call [`TimestampOracle::publish_block`] once *all* writes carrying
/// stamps from the block are visible — publishing early would let a
/// snapshot observe a partially applied group.
#[derive(Debug)]
pub struct BlockStamp {
    /// First (smallest) timestamp in the block.
    pub base: u64,
    /// Number of timestamps in the block.
    pub len: u64,
    ticket: ActiveTicket,
}

impl BlockStamp {
    /// The `i`-th timestamp of the block (`i < len`).
    pub fn ts(&self, i: u64) -> u64 {
        debug_assert!(i < self.len);
        self.base + i
    }
}

/// The cLSM timestamp oracle (Algorithm 2).
#[derive(Debug)]
pub struct TimestampOracle {
    /// The paper's `timeCounter`.
    time_counter: AtomicU64,
    /// The paper's `snapTime`: every snapshot ever granted is ≤ this,
    /// and every write timestamp ever published exceeds it.
    snap_time: AtomicU64,
    active: ActiveSet,
}

impl Default for TimestampOracle {
    fn default() -> Self {
        Self::new(DEFAULT_ACTIVE_SLOTS)
    }
}

impl TimestampOracle {
    /// Creates an oracle whose active set has `active_slots` slots.
    pub fn new(active_slots: usize) -> Self {
        TimestampOracle {
            time_counter: AtomicU64::new(0),
            snap_time: AtomicU64::new(0),
            active: ActiveSet::new(active_slots),
        }
    }

    /// Creates an oracle over the single-set `Active` shim
    /// ([`ActiveSet::new_unstriped`]) — the pre-striping probe policy,
    /// kept so the stripe-invariant stress tests can run against both
    /// layouts and demonstrate semantic equivalence.
    pub fn new_unstriped(active_slots: usize) -> Self {
        TimestampOracle {
            time_counter: AtomicU64::new(0),
            snap_time: AtomicU64::new(0),
            active: ActiveSet::new_unstriped(active_slots),
        }
    }

    /// Creates an oracle whose counter starts at `ts` (used on recovery
    /// to resume above the highest recovered timestamp).
    pub fn recovered_at(ts: u64, active_slots: usize) -> Self {
        TimestampOracle {
            time_counter: AtomicU64::new(ts),
            snap_time: AtomicU64::new(0),
            active: ActiveSet::new(active_slots),
        }
    }

    /// Advances `timeCounter` to at least `ts` (idempotent, monotone).
    ///
    /// Used when one oracle is shared across several recovered stores:
    /// each store calls this with its highest recovered timestamp, so
    /// the shared counter resumes above *all* of them regardless of
    /// recovery order.
    pub fn advance_to(&self, ts: u64) {
        self.time_counter.fetch_max(ts, Ordering::SeqCst);
    }

    /// Algorithm 2, `getTS`: acquires a fresh write timestamp, retrying
    /// while the timestamp does not exceed `snapTime`.
    pub fn get_ts(&self) -> WriteStamp {
        loop {
            let ts = self.time_counter.fetch_add(1, Ordering::SeqCst) + 1;
            let ticket = self.active.add(ts);
            if ts <= self.snap_time.load(Ordering::SeqCst) {
                // A snapshot has already been promised that no write at
                // or below its time is in flight; roll back and retry.
                self.active.remove(ticket);
                T_GETTS_ROLLBACK.instant(ts);
            } else {
                return WriteStamp { ts, ticket };
            }
        }
    }

    /// Algorithm 2, `put` line 5: marks the write carrying `stamp` as
    /// visible, unblocking snapshots waiting on it.
    pub fn publish(&self, stamp: WriteStamp) {
        self.active.remove(stamp.ticket);
    }

    /// Group-commit variant of `getTS`: acquires `n` contiguous
    /// timestamps with one `fetch_add`, registering only the block base
    /// in the `Active` set (the base is the block's minimum, so holding
    /// it active shields every stamp in the block from `getSnap`).
    ///
    /// The Figure 4 race extends to blocks unchanged: if a snapshot was
    /// promised a time at or above `base` between the counter bump and
    /// the `Active` registration, the *whole block* rolls back and a
    /// fresh one is drawn. Timestamp holes left by rollback are legal —
    /// recovery and reads only care about relative order.
    ///
    /// `n` must be nonzero.
    pub fn get_ts_block(&self, n: u64) -> BlockStamp {
        assert!(n > 0, "empty timestamp blocks are not allowed");
        loop {
            let end = self.time_counter.fetch_add(n, Ordering::SeqCst) + n;
            let base = end - n + 1;
            let ticket = self.active.add(base);
            if base <= self.snap_time.load(Ordering::SeqCst) {
                self.active.remove(ticket);
                T_GETTS_ROLLBACK.instant(base);
            } else {
                return BlockStamp {
                    base,
                    len: n,
                    ticket,
                };
            }
        }
    }

    /// Marks every write carrying a stamp from `block` as visible.
    ///
    /// Must only be called once *all* of the block's writes are in the
    /// in-memory component: the block publishes atomically, so a
    /// snapshot granted afterwards sees either none or all of them
    /// (with respect to the `Active`-set wait; per-stamp visibility
    /// still follows timestamp order).
    pub fn publish_block(&self, block: BlockStamp) {
        self.active.remove(block.ticket);
    }

    /// Algorithm 2, `getSnap` (minus the snapshot-registry bookkeeping,
    /// which the DB layer does under the shared-exclusive lock).
    ///
    /// Returns a timestamp `t` such that every write with timestamp
    /// ≤ `t` is already visible and no future write will receive a
    /// timestamp ≤ `t`.
    pub fn get_snap(&self) -> u64 {
        self.get_snap_publish();
        self.wait_for_stragglers()
    }

    /// First half of `getSnap`: chooses a snapshot time below every
    /// active write and publishes it into `snapTime` (so no future
    /// write can receive a timestamp at or below it), but does **not**
    /// wait for in-flight writes at or below the chosen time.
    ///
    /// Callers that hold locks other writers may need in order to
    /// publish (the sharded composition's all-shard snapshot protocol)
    /// use this non-blocking half under their locks, then call
    /// [`TimestampOracle::wait_snap_visible`] after releasing them.
    /// The returned timestamp is a valid serializable snapshot time
    /// once `wait_snap_visible(ts)` has returned.
    pub fn get_snap_publish(&self) -> u64 {
        let mut ts = self.time_counter.load(Ordering::SeqCst);
        if let Some(min_active) = self.active.find_min() {
            ts = ts.min(min_active - 1);
        }
        self.snap_time.fetch_max(ts, Ordering::SeqCst);
        ts
    }

    /// Second half of `getSnap`: waits until every write with a
    /// timestamp at or below `ts` has either published or rolled back.
    /// After this returns, a read at `ts` observes a consistent cut:
    /// no write ≤ `ts` is still in flight, and (provided `ts` was
    /// published via [`TimestampOracle::get_snap_publish`]) no future
    /// write will be granted a timestamp ≤ `ts`.
    pub fn wait_snap_visible(&self, ts: u64) {
        let mut spins = 0u32;
        let mut wait_span = None;
        loop {
            match self.active.find_min() {
                Some(min) if min <= ts => {
                    if wait_span.is_none() {
                        wait_span = Some(T_SNAP_WAIT.span_with(min));
                    }
                    if spins < 64 {
                        spins += 1;
                        std::hint::spin_loop();
                    } else {
                        std::thread::yield_now();
                    }
                }
                _ => return,
            }
        }
    }

    /// Linearizable `getSnap` variant (§3.2.1): waits until the snapshot
    /// time covers everything up to the counter value at call time, so
    /// the scan never reads "in the past".
    pub fn get_snap_linearizable(&self) -> u64 {
        let target = self.time_counter.load(Ordering::SeqCst);
        loop {
            let granted = self.get_snap();
            if granted >= target {
                return granted;
            }
            std::thread::yield_now();
        }
    }

    /// Waits until every active write timestamp exceeds `snapTime`, then
    /// returns the validated `snapTime`.
    fn wait_for_stragglers(&self) -> u64 {
        let mut spins = 0u32;
        // Span only the waiting case: the common no-wait path records
        // nothing.
        let mut wait_span = None;
        loop {
            let snap = self.snap_time.load(Ordering::SeqCst);
            match self.active.find_min() {
                Some(min) if min <= snap => {
                    // An in-flight put at or below our snapshot time: it
                    // will either publish (making its write visible) or
                    // roll back. Either way we wait it out.
                    if wait_span.is_none() {
                        wait_span = Some(T_SNAP_WAIT.span_with(min));
                    }
                    if spins < 64 {
                        spins += 1;
                        std::hint::spin_loop();
                    } else {
                        std::thread::yield_now();
                    }
                }
                _ => return snap,
            }
        }
    }

    /// Current value of `timeCounter` (diagnostics / recovery).
    pub fn current_time(&self) -> u64 {
        self.time_counter.load(Ordering::SeqCst)
    }

    /// Current `snapTime` high-water mark.
    pub fn snap_time(&self) -> u64 {
        self.snap_time.load(Ordering::SeqCst)
    }

    /// Direct access to the active set (used by tests and benches).
    pub fn active(&self) -> &ActiveSet {
        &self.active
    }
}

/// Registry of live snapshot handles, consulted by `beforeMerge` to
/// compute the version-GC watermark (§3.2.1).
///
/// The paper protects this list with the shared-exclusive lock; callers
/// here do the same (register under shared mode, query under exclusive
/// mode), so a plain mutex-protected multiset suffices internally.
#[derive(Debug, Default)]
pub struct SnapshotRegistry {
    /// timestamp → creation instants of live handles at that timestamp.
    live: Mutex<BTreeMap<u64, Vec<Instant>>>,
}

impl SnapshotRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a live snapshot at `ts`.
    pub fn register(&self, ts: u64) {
        self.live.lock().entry(ts).or_default().push(Instant::now());
    }

    /// Releases one handle at `ts`.
    ///
    /// Unknown timestamps are ignored: a handle may already have been
    /// reclaimed by [`SnapshotRegistry::expire_older_than`] (the
    /// paper's TTL-based removal of unused snapshot handles, §3.2.1).
    pub fn unregister(&self, ts: u64) {
        let mut live = self.live.lock();
        if let Some(instants) = live.get_mut(&ts) {
            instants.pop();
            if instants.is_empty() {
                live.remove(&ts);
            }
        }
    }

    /// Reclaims every handle registered longer than `ttl` ago; returns
    /// how many were dropped. Reads through an expired handle may miss
    /// versions afterwards — the application contract is the paper's:
    /// unused handles must be removed "either by the application
    /// (through an API call), or based on TTL".
    pub fn expire_older_than(&self, ttl: Duration) -> usize {
        let cutoff = Instant::now() - ttl;
        let mut live = self.live.lock();
        let mut dropped = 0;
        live.retain(|_, instants| {
            let before = instants.len();
            instants.retain(|created| *created >= cutoff);
            dropped += before - instants.len();
            !instants.is_empty()
        });
        dropped
    }

    /// The oldest live snapshot, or `None` if there are no snapshots.
    ///
    /// The merge may discard any version that is not the newest version
    /// ≤ this watermark for its key.
    pub fn oldest(&self) -> Option<u64> {
        self.live.lock().keys().next().copied()
    }

    /// Number of live snapshot handles.
    pub fn len(&self) -> usize {
        self.live.lock().values().map(Vec::len).sum()
    }

    /// Returns `true` when no snapshots are live.
    pub fn is_empty(&self) -> bool {
        self.live.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn timestamps_are_unique_and_increasing_per_thread() {
        let oracle = TimestampOracle::default();
        let mut last = 0;
        for _ in 0..100 {
            let stamp = oracle.get_ts();
            assert!(stamp.ts > last);
            last = stamp.ts;
            oracle.publish(stamp);
        }
    }

    #[test]
    fn snapshot_excludes_active_writes() {
        let oracle = TimestampOracle::default();
        let s1 = oracle.get_ts(); // ts = 1, held active
        let s2 = oracle.get_ts(); // ts = 2, held active
        assert_eq!((s1.ts, s2.ts), (1, 2));
        // Figure 3 scenario: the snapshot must choose a time below both
        // active writes; it returns immediately because snapTime = 0 and
        // min(active) = 1 > 0.
        let snap = oracle.get_snap();
        assert_eq!(snap, 0);
        oracle.publish(s1);
        oracle.publish(s2);
        assert_eq!(oracle.get_snap(), 2);
    }

    #[test]
    fn get_ts_rolls_back_below_snap_time() {
        let oracle = TimestampOracle::default();
        // Take the counter to 5 and publish everything.
        for _ in 0..5 {
            let s = oracle.get_ts();
            oracle.publish(s);
        }
        let snap = oracle.get_snap();
        assert_eq!(snap, 5);
        // The next write timestamp must exceed the snapshot time even
        // though the counter already matches it.
        let s = oracle.get_ts();
        assert!(s.ts > snap);
        oracle.publish(s);
    }

    #[test]
    fn get_snap_waits_for_publication() {
        let oracle = Arc::new(TimestampOracle::default());
        let w = oracle.get_ts();
        let ts = w.ts;
        // Force the snapshot to target the in-flight write by advancing
        // snapTime manually through a racing get_snap: we emulate the
        // Figure 4 interleaving by publishing from another thread after
        // a delay; get_snap must block until then.
        let o2 = Arc::clone(&oracle);
        let publisher = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(30));
            o2.publish(w);
        });
        let snap = oracle.get_snap();
        // The snapshot may only cover ts-1 (write still active when the
        // snapshot chose its time) — never equal ts before publication.
        assert!(snap <= ts);
        publisher.join().unwrap();
        let snap_after = oracle.get_snap();
        assert_eq!(snap_after, ts);
    }

    #[test]
    fn linearizable_snap_covers_call_time() {
        let oracle = TimestampOracle::default();
        for _ in 0..10 {
            let s = oracle.get_ts();
            oracle.publish(s);
        }
        assert!(oracle.get_snap_linearizable() >= 10);
    }

    #[test]
    fn concurrent_writers_and_snapshots_stay_consistent() {
        let oracle = Arc::new(TimestampOracle::new(64));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let o = Arc::clone(&oracle);
            handles.push(std::thread::spawn(move || {
                for _ in 0..2000 {
                    let s = o.get_ts();
                    // Invariant from Algorithm 2: a granted write
                    // timestamp always exceeds the snapshot watermark
                    // at grant time.
                    assert!(s.ts > o.snap_time());
                    o.publish(s);
                }
            }));
        }
        for _ in 0..2 {
            let o = Arc::clone(&oracle);
            handles.push(std::thread::spawn(move || {
                let mut last = 0;
                for _ in 0..500 {
                    let snap = o.get_snap();
                    // Snapshots are monotone per thread.
                    assert!(snap >= last);
                    last = snap;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn advance_to_is_monotone_and_idempotent() {
        let oracle = TimestampOracle::default();
        oracle.advance_to(17);
        assert_eq!(oracle.current_time(), 17);
        oracle.advance_to(5); // lower value must not rewind
        assert_eq!(oracle.current_time(), 17);
        oracle.advance_to(17);
        assert_eq!(oracle.current_time(), 17);
        let s = oracle.get_ts();
        assert_eq!(s.ts, 18);
        oracle.publish(s);
    }

    #[test]
    fn split_get_snap_matches_combined_form() {
        let oracle = TimestampOracle::default();
        for _ in 0..4 {
            let s = oracle.get_ts();
            oracle.publish(s);
        }
        // No writes in flight: publish half chooses the counter value
        // and the wait half returns immediately.
        let ts = oracle.get_snap_publish();
        oracle.wait_snap_visible(ts);
        assert_eq!(ts, 4);
        // A write granted after the publish half must exceed it.
        let s = oracle.get_ts();
        assert!(s.ts > ts);
        oracle.publish(s);
    }

    #[test]
    fn wait_snap_visible_blocks_on_inflight_write() {
        let oracle = Arc::new(TimestampOracle::default());
        let w = oracle.get_ts();
        let wts = w.ts;
        let ts = oracle.get_snap_publish();
        assert!(ts < wts, "snapshot time must exclude the active write");
        // Waiting on a time below the active write returns immediately.
        oracle.wait_snap_visible(ts);
        // Waiting on the write's own time blocks until publication.
        let o2 = Arc::clone(&oracle);
        let publisher = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            o2.publish(w);
        });
        oracle.wait_snap_visible(wts);
        assert!(oracle.active().is_empty());
        publisher.join().unwrap();
    }

    #[test]
    fn block_stamps_are_contiguous_and_fresh() {
        let oracle = TimestampOracle::default();
        let single = oracle.get_ts();
        assert_eq!(single.ts, 1);
        oracle.publish(single);
        let block = oracle.get_ts_block(4);
        assert_eq!((block.base, block.len), (2, 4));
        assert_eq!(block.ts(0), 2);
        assert_eq!(block.ts(3), 5);
        oracle.publish_block(block);
        // The counter moved past the whole block.
        let next = oracle.get_ts();
        assert_eq!(next.ts, 6);
        oracle.publish(next);
    }

    #[test]
    fn snapshot_excludes_whole_active_block() {
        let oracle = TimestampOracle::default();
        let block = oracle.get_ts_block(3); // ts 1..=3 in flight
        assert_eq!(block.base, 1);
        // Only the base is registered, but the snapshot time must still
        // exclude every stamp in the block: min(active) - 1 = 0.
        let snap = oracle.get_snap();
        assert_eq!(snap, 0);
        oracle.publish_block(block);
        assert_eq!(oracle.get_snap(), 3);
    }

    #[test]
    fn block_rolls_back_below_snap_time() {
        let oracle = TimestampOracle::default();
        for _ in 0..5 {
            let s = oracle.get_ts();
            oracle.publish(s);
        }
        let snap = oracle.get_snap();
        assert_eq!(snap, 5);
        // A block drawn now starts at 6 > snapTime, no rollback needed;
        // exercise the rollback path by rewinding the counter to force
        // base <= snapTime on the first draw.
        oracle.time_counter.store(2, Ordering::SeqCst);
        let block = oracle.get_ts_block(2);
        // First draw gave base 3 <= snapTime 5 and was rolled back; the
        // retry keeps adding until base exceeds snapTime.
        assert!(block.base > snap);
        oracle.publish_block(block);
    }

    #[test]
    fn blocks_interleave_with_single_stamps() {
        let oracle = Arc::new(TimestampOracle::new(64));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let o = Arc::clone(&oracle);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    let b = o.get_ts_block(4);
                    assert!(b.base > o.snap_time());
                    o.publish_block(b);
                }
            }));
        }
        for _ in 0..2 {
            let o = Arc::clone(&oracle);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    let s = o.get_ts();
                    assert!(s.ts > o.snap_time());
                    o.publish(s);
                }
            }));
        }
        let o = Arc::clone(&oracle);
        handles.push(std::thread::spawn(move || {
            let mut last = 0;
            for _ in 0..500 {
                let snap = o.get_snap();
                assert!(snap >= last);
                last = snap;
            }
        }));
        for h in handles {
            h.join().unwrap();
        }
        // 2 threads × 1000 blocks × 4 + 2 threads × 1000 singles, minus
        // rollback holes — the counter must cover at least that many.
        assert!(oracle.current_time() >= 10_000);
    }

    /// The stripe invariant, hammered: while a writer holds a stamp
    /// (it is *live* — granted, not yet published), `min_active` must
    /// never exceed that stamp. Eight writer threads mix single stamps
    /// and blocks with constant add/remove churn; two snapshot threads
    /// hammer `find_min` through `get_snap` at the same time.
    fn hammer_min_active_invariant(oracle: &TimestampOracle) {
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                scope.spawn(move || {
                    for i in 0..2000u64 {
                        if (t + i) % 4 == 0 {
                            let b = oracle.get_ts_block(3);
                            let min = oracle.active().find_min().expect("own block is live");
                            assert!(
                                min <= b.base,
                                "min_active {min} exceeds live block base {}",
                                b.base
                            );
                            oracle.publish_block(b);
                        } else {
                            let s = oracle.get_ts();
                            let min = oracle.active().find_min().expect("own stamp is live");
                            assert!(min <= s.ts, "min_active {min} exceeds live stamp {}", s.ts);
                            oracle.publish(s);
                        }
                    }
                });
            }
            for _ in 0..2 {
                scope.spawn(|| {
                    let mut last = 0;
                    for _ in 0..400 {
                        let snap = oracle.get_snap();
                        assert!(snap >= last, "snapshots must be monotone per thread");
                        last = snap;
                    }
                });
            }
        });
        assert!(oracle.active().is_empty());
        assert!(oracle.current_time() >= 8 * 2000);
    }

    #[test]
    fn striped_active_set_stress() {
        hammer_min_active_invariant(&TimestampOracle::new(64));
    }

    /// Kill-test: the same invariant suite against the single-set shim
    /// (flat hash probing, no thread affinity). Passing here proves the
    /// striping changed only cache behavior, never semantics.
    #[test]
    fn unstriped_shim_passes_the_same_stress() {
        hammer_min_active_invariant(&TimestampOracle::new_unstriped(64));
    }

    #[test]
    fn capacity_rounds_up_to_whole_stripes() {
        for requested in [1usize, 7, 8, 9, 64, 100] {
            for set in [
                ActiveSet::new(requested),
                ActiveSet::new_unstriped(requested),
            ] {
                assert!(set.capacity() >= requested);
                assert_eq!(set.capacity() % 8, 0, "stripes are 8 slots wide");
            }
        }
    }

    #[test]
    fn add_overflows_into_neighbor_stripes() {
        // Two stripes, one thread: its home stripe fills after 8 adds,
        // so later adds must overflow into the neighbor instead of
        // spinning.
        let set = ActiveSet::new(16);
        let tickets: Vec<ActiveTicket> = (1..=16).map(|ts| set.add(ts)).collect();
        assert_eq!(set.len(), 16);
        assert_eq!(set.find_min(), Some(1));
        for t in tickets {
            set.remove(t);
        }
        assert!(set.is_empty());
    }

    #[test]
    fn active_set_add_remove_min() {
        let set = ActiveSet::new(8);
        assert!(set.is_empty());
        let t5 = set.add(5);
        let t3 = set.add(3);
        let t9 = set.add(9);
        assert_eq!(set.find_min(), Some(3));
        set.remove(t3);
        assert_eq!(set.find_min(), Some(5));
        set.remove(t5);
        set.remove(t9);
        assert!(set.is_empty());
    }

    #[test]
    fn active_set_handles_collisions() {
        // One slot: every add after the first probes the same slot.
        let set = ActiveSet::new(1);
        let t1 = set.add(7);
        assert_eq!(set.find_min(), Some(7));
        set.remove(t1);
        let t2 = set.add(8);
        assert_eq!(set.find_min(), Some(8));
        set.remove(t2);
    }

    #[test]
    fn snapshot_registry_ttl_expiry() {
        let reg = SnapshotRegistry::new();
        reg.register(5);
        reg.register(9);
        std::thread::sleep(Duration::from_millis(20));
        reg.register(12);
        // Expire everything older than 10ms: the first two go.
        let dropped = reg.expire_older_than(Duration::from_millis(10));
        assert_eq!(dropped, 2);
        assert_eq!(reg.oldest(), Some(12));
        // Unregistering an expired handle is a no-op, not a panic.
        reg.unregister(5);
        assert_eq!(reg.len(), 1);
        reg.unregister(12);
        assert!(reg.is_empty());
    }

    #[test]
    fn snapshot_registry_watermark() {
        let reg = SnapshotRegistry::new();
        assert!(reg.oldest().is_none());
        reg.register(10);
        reg.register(5);
        reg.register(5);
        assert_eq!(reg.oldest(), Some(5));
        assert_eq!(reg.len(), 3);
        reg.unregister(5);
        assert_eq!(reg.oldest(), Some(5));
        reg.unregister(5);
        assert_eq!(reg.oldest(), Some(10));
        reg.unregister(10);
        assert!(reg.is_empty());
    }
}
