//! Per-thread buffered event logs with a shared logical clock.
//!
//! The correctness checker (`clsm-check`) records an invoke/response
//! event pair around every store operation. The recorder must not
//! perturb the interleavings it observes, so the hot path is a plain
//! `Vec::push` into a buffer owned by the recording thread — no locks,
//! no shared cache lines beyond the tick counter. Buffers drain into
//! the shared log when a handle is dropped (or flushed explicitly),
//! which is outside the measured window.
//!
//! The logical clock is one `fetch_add(1)` counter. Ticks are totally
//! ordered and consistent with real time: if operation A's response
//! tick is smaller than operation B's invoke tick, A really did
//! complete before B began — exactly the precedence relation a
//! linearizability checker needs.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// A shared event log: one logical clock plus the buffers every
/// [`EventLogHandle`] has flushed so far.
#[derive(Debug)]
pub struct EventLog<T> {
    ticks: AtomicU64,
    collected: Mutex<Vec<Vec<T>>>,
}

impl<T> Default for EventLog<T> {
    fn default() -> Self {
        EventLog::new()
    }
}

impl<T> EventLog<T> {
    /// Creates an empty log with the clock at zero.
    pub fn new() -> EventLog<T> {
        EventLog {
            ticks: AtomicU64::new(0),
            collected: Mutex::new(Vec::new()),
        }
    }

    /// Advances the logical clock and returns the new tick (> 0).
    pub fn tick(&self) -> u64 {
        self.ticks.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// The current clock value without advancing it.
    pub fn now(&self) -> u64 {
        self.ticks.load(Ordering::Acquire)
    }

    /// Creates a per-thread recording handle.
    pub fn handle(self: &Arc<Self>) -> EventLogHandle<T> {
        EventLogHandle {
            log: Arc::clone(self),
            buf: Vec::new(),
        }
    }

    /// Removes and returns every flushed event. Events recorded through
    /// handles that have not yet flushed are not included — drop (or
    /// flush) all handles first.
    pub fn drain(&self) -> Vec<T> {
        let mut bufs = std::mem::take(&mut *self.collected.lock());
        let total = bufs.iter().map(Vec::len).sum();
        let mut out = Vec::with_capacity(total);
        for buf in &mut bufs {
            out.append(buf);
        }
        out
    }

    fn absorb(&self, buf: Vec<T>) {
        if !buf.is_empty() {
            self.collected.lock().push(buf);
        }
    }
}

/// A single-thread buffer feeding an [`EventLog`].
///
/// Not `Sync` by design: each worker thread records into its own
/// handle, so pushes never contend. The buffer flushes into the shared
/// log on drop.
#[derive(Debug)]
pub struct EventLogHandle<T> {
    log: Arc<EventLog<T>>,
    buf: Vec<T>,
}

impl<T> EventLogHandle<T> {
    /// Advances the shared logical clock (see [`EventLog::tick`]).
    pub fn tick(&self) -> u64 {
        self.log.tick()
    }

    /// Appends one event to the thread-local buffer.
    pub fn push(&mut self, event: T) {
        self.buf.push(event);
    }

    /// Number of events buffered locally (not yet flushed).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Moves the buffered events into the shared log early.
    pub fn flush(&mut self) {
        self.log.absorb(std::mem::take(&mut self.buf));
    }
}

impl<T> Drop for EventLogHandle<T> {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_are_unique_and_monotone_across_threads() {
        let log: Arc<EventLog<u64>> = Arc::new(EventLog::new());
        let mut joins = Vec::new();
        for _ in 0..8 {
            let log = Arc::clone(&log);
            joins.push(std::thread::spawn(move || {
                let mut handle = log.handle();
                for _ in 0..1000 {
                    let t = handle.tick();
                    handle.push(t);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let mut ticks = log.drain();
        assert_eq!(ticks.len(), 8000);
        ticks.sort_unstable();
        ticks.dedup();
        assert_eq!(ticks.len(), 8000, "duplicate ticks");
        assert_eq!(*ticks.last().unwrap(), 8000);
    }

    #[test]
    fn drain_misses_unflushed_then_sees_flushed() {
        let log: Arc<EventLog<u32>> = Arc::new(EventLog::new());
        let mut h = log.handle();
        h.push(1);
        assert_eq!(h.buffered(), 1);
        assert!(log.drain().is_empty());
        h.flush();
        assert_eq!(log.drain(), vec![1]);
        h.push(2);
        drop(h);
        assert_eq!(log.drain(), vec![2]);
    }
}
