//! Cheap, dense per-thread indices for striped data structures.
//!
//! Several hot-path structures (the oracle's striped `Active` set, the
//! arena's thread-local chunks, the striped WAL) want to spread threads
//! across independent cache lines or queues. `std::thread::ThreadId`
//! is neither dense nor cheap to hash, so this module hands every
//! thread a small integer on first use, assigned from a global
//! counter. Indices are never reused, but consumers only ever take
//! them modulo a stripe count, so monotone growth is harmless.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Returns a small index unique to the calling thread, assigned on
/// first use. Stable for the thread's lifetime; never reused.
///
/// During thread destruction (when thread-local storage is already
/// gone) this falls back to 0 — acceptable for its consumers, which
/// only use the index to *pick* a stripe, never for exclusion.
///
/// # Examples
///
/// ```
/// let a = clsm_util::tid::thread_index();
/// assert_eq!(a, clsm_util::tid::thread_index());
/// ```
pub fn thread_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static INDEX: usize = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    INDEX.try_with(|i| *i).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_stable_and_distinct() {
        let mine = thread_index();
        assert_eq!(mine, thread_index());
        let handles: Vec<_> = (0..4).map(|_| std::thread::spawn(thread_index)).collect();
        let mut seen: Vec<usize> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        seen.push(mine);
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 5, "indices must be distinct across threads");
    }
}
