//! Bloom filter for SSTable blocks (LevelDB-compatible construction).
//!
//! The disk component consults a per-table Bloom filter before touching
//! data blocks, which is one of the optimizations the paper inherits
//! from LevelDB ("Bloom filters to speed up reads", §4). Uses double
//! hashing: `k` probe positions are derived from one 32-bit hash by
//! repeatedly adding a rotated delta.

/// Builds and queries Bloom filters with a fixed bits-per-key budget.
#[derive(Debug, Clone)]
pub struct BloomFilterPolicy {
    bits_per_key: usize,
    k: usize,
}

impl BloomFilterPolicy {
    /// Creates a policy targeting `bits_per_key` filter bits per key.
    ///
    /// The number of probes is `bits_per_key * ln 2`, clamped to
    /// `[1, 30]`, which minimizes the false-positive rate.
    pub fn new(bits_per_key: usize) -> Self {
        let k = ((bits_per_key as f64) * 0.69) as usize;
        BloomFilterPolicy {
            bits_per_key,
            k: k.clamp(1, 30),
        }
    }

    /// Builds a filter over `keys`, appending it to a fresh byte vector.
    ///
    /// The final byte records `k` so that readers built with a different
    /// policy can still interpret the filter.
    pub fn create_filter(&self, keys: &[&[u8]]) -> Vec<u8> {
        let mut bits = keys.len() * self.bits_per_key;
        // Tiny filters have huge false-positive rates; enforce a floor.
        bits = bits.max(64);
        let bytes = bits.div_ceil(8);
        let bits = bytes * 8;

        let mut filter = vec![0u8; bytes + 1];
        filter[bytes] = self.k as u8;
        for key in keys {
            let mut h = bloom_hash(key);
            let delta = h.rotate_right(17);
            for _ in 0..self.k {
                let bit_pos = (h as usize) % bits;
                filter[bit_pos / 8] |= 1 << (bit_pos % 8);
                h = h.wrapping_add(delta);
            }
        }
        filter
    }

    /// Returns `false` only if `key` is definitely not in the filter.
    pub fn key_may_match(&self, key: &[u8], filter: &[u8]) -> bool {
        if filter.len() < 2 {
            return true;
        }
        let bytes = filter.len() - 1;
        let bits = bytes * 8;
        let k = filter[bytes] as usize;
        if k > 30 {
            // Reserved for future encodings; err on the safe side.
            return true;
        }
        let mut h = bloom_hash(key);
        let delta = h.rotate_right(17);
        for _ in 0..k {
            let bit_pos = (h as usize) % bits;
            if filter[bit_pos / 8] & (1 << (bit_pos % 8)) == 0 {
                return false;
            }
            h = h.wrapping_add(delta);
        }
        true
    }
}

/// 32-bit multiplicative hash used by the Bloom filter (Murmur-like).
pub fn bloom_hash(data: &[u8]) -> u32 {
    hash_seeded(data, 0xbc9f_1d34)
}

/// Seeded variant of [`bloom_hash`], also used by the block cache shards.
pub fn hash_seeded(data: &[u8], seed: u32) -> u32 {
    const M: u32 = 0xc6a4_a793;
    const R: u32 = 24;
    let mut h = seed ^ (M.wrapping_mul(data.len() as u32));
    let mut chunks = data.chunks_exact(4);
    for w in &mut chunks {
        let w = u32::from_le_bytes(w.try_into().expect("4-byte chunk"));
        h = h.wrapping_add(w).wrapping_mul(M);
        h ^= h >> 16;
    }
    let rest = chunks.remainder();
    // Tail bytes, high-to-low as in the LevelDB reference.
    if rest.len() >= 3 {
        h = h.wrapping_add((rest[2] as u32) << 16);
    }
    if rest.len() >= 2 {
        h = h.wrapping_add((rest[1] as u32) << 8);
    }
    if !rest.is_empty() {
        h = h.wrapping_add(rest[0] as u32);
        h = h.wrapping_mul(M);
        h ^= h >> R;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u32) -> Vec<u8> {
        i.to_le_bytes().to_vec()
    }

    #[test]
    fn empty_filter_rejects() {
        let policy = BloomFilterPolicy::new(10);
        let filter = policy.create_filter(&[]);
        assert!(!policy.key_may_match(b"hello", &filter));
        assert!(!policy.key_may_match(b"", &filter));
    }

    #[test]
    fn no_false_negatives() {
        let policy = BloomFilterPolicy::new(10);
        for n in [1usize, 10, 100, 1000, 10_000] {
            let keys: Vec<Vec<u8>> = (0..n as u32).map(key).collect();
            let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
            let filter = policy.create_filter(&refs);
            for k in &keys {
                assert!(policy.key_may_match(k, &filter), "n={n}");
            }
        }
    }

    #[test]
    fn false_positive_rate_is_low() {
        let policy = BloomFilterPolicy::new(10);
        let keys: Vec<Vec<u8>> = (0..10_000u32).map(key).collect();
        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        let filter = policy.create_filter(&refs);
        let mut hits = 0;
        for i in 10_000u32..20_000 {
            if policy.key_may_match(&key(i), &filter) {
                hits += 1;
            }
        }
        // 10 bits/key gives ~1% theoretical FP rate; allow generous slack.
        assert!(hits < 300, "false positive rate too high: {hits}/10000");
    }

    #[test]
    fn short_or_foreign_filters_are_permissive() {
        let policy = BloomFilterPolicy::new(10);
        assert!(policy.key_may_match(b"x", &[]));
        assert!(policy.key_may_match(b"x", &[0x00]));
        // k byte of 31 marks an unknown encoding.
        let filter = vec![0u8, 0, 0, 0, 31];
        assert!(policy.key_may_match(b"x", &filter));
    }

    #[test]
    fn hash_is_stable_and_spread() {
        assert_eq!(bloom_hash(b""), bloom_hash(b""));
        assert_ne!(bloom_hash(b"a"), bloom_hash(b"b"));
        assert_ne!(hash_seeded(b"a", 1), hash_seeded(b"a", 2));
    }
}
