//! Injectable storage environment: every byte the store reads or
//! writes goes through an [`Env`], so tests can interpose deterministic
//! fault injection between the LSM and the file system.
//!
//! Two implementations ship with the crate:
//!
//! - [`RealEnv`] — thin forwarding to `std::fs`, the zero-cost default.
//!   Write handles are buffered exactly like the `BufWriter`s the store
//!   used before the abstraction existed, so the WAL append hot path
//!   gains no locks and no per-record allocation.
//! - [`FaultEnv`] — a fully in-memory file system that models the page
//!   cache / durable-storage split: every file tracks how many of its
//!   bytes have been `fsync`ed. A seeded fault plan can crash the
//!   process at the N-th durability-relevant operation (write, sync, or
//!   rename), and [`FaultEnv::power_loss`] discards un-synced suffixes
//!   (optionally keeping a torn, bit-flipped tail, as real disks do).
//!
//! The durability model of `FaultEnv`:
//!
//! - `append` puts bytes in the "page cache": readers see them
//!   immediately, power loss may drop them.
//! - `sync` moves a file's entire current contents to durable storage.
//! - `rename` is atomic and durable once it returns (the store writes
//!   rename targets with [`Env::write`], which syncs, before renaming).
//! - A crash injected at operation N fails that operation *without
//!   applying it* and poisons the env: every later mutation fails too,
//!   modeling a dead process. [`FaultEnv::power_loss`] clears the
//!   poison so the store can be reopened on the surviving bytes.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use crate::error::{Error, Result};

/// A sequentially written file handle (WAL, SSTable, manifest).
pub trait WritableFile: Send {
    /// Appends `data` at the end of the file.
    fn append(&mut self, data: &[u8]) -> Result<()>;
    /// Pushes buffered bytes to the OS (page cache), without durability.
    fn flush(&mut self) -> Result<()>;
    /// Makes all appended bytes durable (`fsync`/`fdatasync`).
    fn sync(&mut self) -> Result<()>;
}

/// A randomly readable file handle (SSTable reads, log replay).
#[allow(clippy::len_without_is_empty)]
pub trait RandomAccessFile: Send + Sync {
    /// Reads up to `buf.len()` bytes at `offset`; returns the count
    /// actually read (short only at end of file).
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<usize>;

    /// Current length of the file in bytes.
    fn len(&self) -> Result<u64>;

    /// Fills `buf` from `offset` exactly, erroring on a short read.
    fn read_exact_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        let mut done = 0;
        while done < buf.len() {
            let n = self.read_at(offset + done as u64, &mut buf[done..])?;
            if n == 0 {
                return Err(Error::from(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "short read",
                )));
            }
            done += n;
        }
        Ok(())
    }
}

/// The storage environment: the store's only gateway to persistent
/// state. `Arc<dyn Env>` is threaded from [`Env`]-carrying options down
/// to every WAL, SSTable, and manifest touch point.
pub trait Env: Send + Sync + fmt::Debug {
    /// Creates (or truncates) `path` for sequential writing.
    fn open_write(&self, path: &Path) -> Result<Box<dyn WritableFile>>;
    /// Opens `path` for random-access reads.
    fn open_read(&self, path: &Path) -> Result<Box<dyn RandomAccessFile>>;
    /// Atomically renames `from` to `to`, replacing any existing `to`.
    fn rename(&self, from: &Path, to: &Path) -> Result<()>;
    /// Removes the file at `path`.
    fn remove(&self, path: &Path) -> Result<()>;
    /// Lists the entry names (files and directories) directly in `dir`.
    fn list(&self, dir: &Path) -> Result<Vec<String>>;
    /// Makes directory metadata (created/renamed entries) durable.
    fn sync_dir(&self, dir: &Path) -> Result<()>;
    /// Creates `dir` and any missing ancestors.
    fn create_dir_all(&self, dir: &Path) -> Result<()>;
    /// Whether a file or directory exists at `path`.
    fn exists(&self, path: &Path) -> bool;

    /// Reads the entire file at `path`.
    fn read(&self, path: &Path) -> Result<Vec<u8>> {
        let file = self.open_read(path)?;
        let len = file.len()? as usize;
        let mut buf = vec![0u8; len];
        file.read_exact_at(0, &mut buf)?;
        Ok(buf)
    }

    /// Writes `data` as the full contents of `path`, durably (synced
    /// before returning) — intended for small metadata files that are
    /// installed via [`Env::rename`].
    fn write(&self, path: &Path, data: &[u8]) -> Result<()> {
        let mut file = self.open_write(path)?;
        file.append(data)?;
        file.sync()
    }
}

// ---------------------------------------------------------------------
// RealEnv
// ---------------------------------------------------------------------

/// The production environment: direct `std::fs` access.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealEnv;

struct RealWritableFile {
    inner: BufWriter<File>,
}

impl WritableFile for RealWritableFile {
    fn append(&mut self, data: &[u8]) -> Result<()> {
        self.inner.write_all(data)?;
        Ok(())
    }

    fn flush(&mut self) -> Result<()> {
        self.inner.flush()?;
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        self.inner.flush()?;
        self.inner.get_ref().sync_data()?;
        Ok(())
    }
}

/// Raw `File` handles satisfy [`WritableFile`] unbuffered — convenient
/// for tests that hand a `File` straight to a log or table writer.
impl WritableFile for File {
    fn append(&mut self, data: &[u8]) -> Result<()> {
        self.write_all(data)?;
        Ok(())
    }

    fn flush(&mut self) -> Result<()> {
        Write::flush(self)?;
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        self.sync_data()?;
        Ok(())
    }
}

impl RandomAccessFile for File {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<usize> {
        use std::os::unix::fs::FileExt;
        Ok(FileExt::read_at(self, buf, offset)?)
    }

    fn len(&self) -> Result<u64> {
        Ok(self.metadata()?.len())
    }

    fn read_exact_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        use std::os::unix::fs::FileExt;
        FileExt::read_exact_at(self, buf, offset)?;
        Ok(())
    }
}

impl Env for RealEnv {
    fn open_write(&self, path: &Path) -> Result<Box<dyn WritableFile>> {
        let file = File::create(path)?;
        Ok(Box::new(RealWritableFile {
            inner: BufWriter::new(file),
        }))
    }

    fn open_read(&self, path: &Path) -> Result<Box<dyn RandomAccessFile>> {
        Ok(Box::new(File::open(path)?))
    }

    fn rename(&self, from: &Path, to: &Path) -> Result<()> {
        std::fs::rename(from, to)?;
        Ok(())
    }

    fn remove(&self, path: &Path) -> Result<()> {
        std::fs::remove_file(path)?;
        Ok(())
    }

    fn list(&self, dir: &Path) -> Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            names.push(entry?.file_name().to_string_lossy().into_owned());
        }
        Ok(names)
    }

    fn sync_dir(&self, dir: &Path) -> Result<()> {
        // Directories can be opened read-only for fsync on unix.
        File::open(dir)?.sync_all()?;
        Ok(())
    }

    fn create_dir_all(&self, dir: &Path) -> Result<()> {
        std::fs::create_dir_all(dir)?;
        Ok(())
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn read(&self, path: &Path) -> Result<Vec<u8>> {
        Ok(std::fs::read(path)?)
    }
}

// ---------------------------------------------------------------------
// FaultEnv
// ---------------------------------------------------------------------

/// One durability-relevant operation recorded by [`FaultEnv`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultOp {
    /// `append` of `len` bytes to the file at the path.
    Write(PathBuf, usize),
    /// `sync` of the file at the path.
    Sync(PathBuf),
    /// Atomic rename.
    Rename(PathBuf, PathBuf),
    /// File removal (recorded for audit, not a crash point).
    Remove(PathBuf),
}

struct FileData {
    data: Vec<u8>,
    synced_len: usize,
}

struct FaultState {
    files: BTreeMap<PathBuf, FileData>,
    dirs: BTreeSet<PathBuf>,
    rng: u64,
    ops: u64,
    crash_at: Option<u64>,
    poisoned: bool,
    history: Vec<FaultOp>,
}

impl FaultState {
    /// Records a durability-relevant op, failing it if the fault plan
    /// says the process dies here (or already died).
    fn check_op(&mut self, op: FaultOp) -> Result<()> {
        if self.poisoned {
            return Err(poisoned_error());
        }
        self.ops += 1;
        let fatal = self.crash_at == Some(self.ops);
        self.history.push(op);
        if fatal {
            self.poisoned = true;
            return Err(Error::from(io::Error::other(format!(
                "injected crash at op {}",
                self.ops
            ))));
        }
        Ok(())
    }

    fn next_rand(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }
}

fn poisoned_error() -> Error {
    Error::from(io::Error::other("fault env poisoned by injected crash"))
}

fn not_found(path: &Path) -> Error {
    Error::from(io::Error::new(
        io::ErrorKind::NotFound,
        format!("no such file: {}", path.display()),
    ))
}

/// A deterministic, seedable in-memory environment for crash testing.
///
/// Clones share state, so a test can keep a handle while the store owns
/// another via `Arc<dyn Env>`.
#[derive(Clone)]
pub struct FaultEnv {
    state: Arc<Mutex<FaultState>>,
}

impl FaultEnv {
    /// Creates an empty in-memory file system with the given RNG seed
    /// (used by [`FaultEnv::power_loss`] to pick torn-tail shapes).
    pub fn new(seed: u64) -> Self {
        FaultEnv {
            state: Arc::new(Mutex::new(FaultState {
                files: BTreeMap::new(),
                dirs: BTreeSet::new(),
                rng: seed | 1,
                ops: 0,
                crash_at: None,
                poisoned: false,
                history: Vec::new(),
            })),
        }
    }

    /// Arms the fault plan: the `n`-th durability-relevant operation
    /// (write/sync/rename) from now fails and poisons the env.
    /// `n` must be at least 1.
    pub fn crash_after(&self, n: u64) {
        assert!(n >= 1, "crash_after takes a 1-based op count");
        let mut s = self.state.lock().unwrap();
        s.crash_at = Some(s.ops + n);
    }

    /// Simulates power loss: un-synced bytes are dropped, except for a
    /// seeded torn tail (a random prefix of the un-synced suffix, with
    /// an occasional bit flip). Clears the crash plan and the poison so
    /// the store can be reopened on the surviving state.
    pub fn power_loss(&self) {
        let mut s = self.state.lock().unwrap();
        s.crash_at = None;
        s.poisoned = false;
        let paths: Vec<PathBuf> = s.files.keys().cloned().collect();
        for path in paths {
            let (len, synced) = {
                let f = &s.files[&path];
                (f.data.len(), f.synced_len)
            };
            let mut new_len = len;
            let mut flip_at = None;
            if len > synced {
                let unsynced = len - synced;
                // Keep a random prefix of the un-synced suffix; 1 in 4
                // survivors additionally get one flipped bit (a torn
                // sector that made it to the platter half-written).
                let keep = (s.next_rand() % (unsynced as u64 + 1)) as usize;
                new_len = synced + keep;
                if keep > 0 && s.next_rand().is_multiple_of(4) {
                    flip_at = Some(synced + (s.next_rand() % keep as u64) as usize);
                }
            }
            let f = s.files.get_mut(&path).expect("file vanished");
            f.data.truncate(new_len);
            if let Some(at) = flip_at {
                f.data[at] ^= 1 << (at % 8);
            }
            f.synced_len = f.data.len();
        }
    }

    /// Clears the crash plan and poison without dropping any data
    /// (a crash the process survived, e.g. a transient I/O error).
    pub fn disarm(&self) {
        let mut s = self.state.lock().unwrap();
        s.crash_at = None;
        s.poisoned = false;
    }

    /// Whether an injected crash has fired.
    pub fn is_poisoned(&self) -> bool {
        self.state.lock().unwrap().poisoned
    }

    /// Total durability-relevant operations performed so far.
    pub fn op_count(&self) -> u64 {
        self.state.lock().unwrap().ops
    }

    /// The recorded operation history (writes, syncs, renames, removes).
    pub fn history(&self) -> Vec<FaultOp> {
        self.state.lock().unwrap().history.clone()
    }

    /// `(length, synced_length)` of the file at `path`, if it exists.
    pub fn file_state(&self, path: &Path) -> Option<(u64, u64)> {
        let s = self.state.lock().unwrap();
        s.files
            .get(path)
            .map(|f| (f.data.len() as u64, f.synced_len as u64))
    }
}

impl fmt::Debug for FaultEnv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.state.lock().unwrap();
        f.debug_struct("FaultEnv")
            .field("files", &s.files.len())
            .field("ops", &s.ops)
            .field("crash_at", &s.crash_at)
            .field("poisoned", &s.poisoned)
            .finish()
    }
}

struct FaultWritableFile {
    state: Arc<Mutex<FaultState>>,
    path: PathBuf,
}

impl WritableFile for FaultWritableFile {
    fn append(&mut self, data: &[u8]) -> Result<()> {
        let mut s = self.state.lock().unwrap();
        s.check_op(FaultOp::Write(self.path.clone(), data.len()))?;
        match s.files.get_mut(&self.path) {
            Some(f) => {
                f.data.extend_from_slice(data);
                Ok(())
            }
            None => Err(not_found(&self.path)),
        }
    }

    fn flush(&mut self) -> Result<()> {
        // Appends land in the simulated page cache immediately.
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        let mut s = self.state.lock().unwrap();
        s.check_op(FaultOp::Sync(self.path.clone()))?;
        match s.files.get_mut(&self.path) {
            Some(f) => {
                f.synced_len = f.data.len();
                Ok(())
            }
            None => Err(not_found(&self.path)),
        }
    }
}

struct FaultRandomAccessFile {
    state: Arc<Mutex<FaultState>>,
    path: PathBuf,
}

impl RandomAccessFile for FaultRandomAccessFile {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<usize> {
        let s = self.state.lock().unwrap();
        let f = s
            .files
            .get(&self.path)
            .ok_or_else(|| not_found(&self.path))?;
        let start = (offset as usize).min(f.data.len());
        let n = buf.len().min(f.data.len() - start);
        buf[..n].copy_from_slice(&f.data[start..start + n]);
        Ok(n)
    }

    fn len(&self) -> Result<u64> {
        let s = self.state.lock().unwrap();
        let f = s
            .files
            .get(&self.path)
            .ok_or_else(|| not_found(&self.path))?;
        Ok(f.data.len() as u64)
    }
}

impl Env for FaultEnv {
    fn open_write(&self, path: &Path) -> Result<Box<dyn WritableFile>> {
        let mut s = self.state.lock().unwrap();
        if s.poisoned {
            return Err(poisoned_error());
        }
        s.files.insert(
            path.to_path_buf(),
            FileData {
                data: Vec::new(),
                synced_len: 0,
            },
        );
        Ok(Box::new(FaultWritableFile {
            state: Arc::clone(&self.state),
            path: path.to_path_buf(),
        }))
    }

    fn open_read(&self, path: &Path) -> Result<Box<dyn RandomAccessFile>> {
        let s = self.state.lock().unwrap();
        if !s.files.contains_key(path) {
            return Err(not_found(path));
        }
        Ok(Box::new(FaultRandomAccessFile {
            state: Arc::clone(&self.state),
            path: path.to_path_buf(),
        }))
    }

    fn rename(&self, from: &Path, to: &Path) -> Result<()> {
        let mut s = self.state.lock().unwrap();
        s.check_op(FaultOp::Rename(from.to_path_buf(), to.to_path_buf()))?;
        match s.files.remove(from) {
            Some(f) => {
                s.files.insert(to.to_path_buf(), f);
                Ok(())
            }
            None => Err(not_found(from)),
        }
    }

    fn remove(&self, path: &Path) -> Result<()> {
        let mut s = self.state.lock().unwrap();
        if s.poisoned {
            return Err(poisoned_error());
        }
        s.history.push(FaultOp::Remove(path.to_path_buf()));
        match s.files.remove(path) {
            Some(_) => Ok(()),
            None => Err(not_found(path)),
        }
    }

    fn list(&self, dir: &Path) -> Result<Vec<String>> {
        let s = self.state.lock().unwrap();
        if !s.dirs.contains(dir) {
            return Err(not_found(dir));
        }
        let mut names = BTreeSet::new();
        for path in s.files.keys().chain(s.dirs.iter()) {
            if path.parent() == Some(dir) {
                if let Some(name) = path.file_name() {
                    names.insert(name.to_string_lossy().into_owned());
                }
            }
        }
        Ok(names.into_iter().collect())
    }

    fn sync_dir(&self, _dir: &Path) -> Result<()> {
        let s = self.state.lock().unwrap();
        if s.poisoned {
            return Err(poisoned_error());
        }
        // Directory entries (creation, rename) are modeled as durable
        // immediately, so this is a no-op beyond the poison check.
        Ok(())
    }

    fn create_dir_all(&self, dir: &Path) -> Result<()> {
        let mut s = self.state.lock().unwrap();
        if s.poisoned {
            return Err(poisoned_error());
        }
        let mut cur = dir.to_path_buf();
        loop {
            s.dirs.insert(cur.clone());
            match cur.parent() {
                Some(p) if !p.as_os_str().is_empty() => cur = p.to_path_buf(),
                _ => break,
            }
        }
        Ok(())
    }

    fn exists(&self, path: &Path) -> bool {
        let s = self.state.lock().unwrap();
        s.files.contains_key(path) || s.dirs.contains(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_env_basic_fs() {
        let env = FaultEnv::new(7);
        let dir = Path::new("/db");
        env.create_dir_all(dir).unwrap();
        assert!(env.exists(dir));

        let path = dir.join("000001.log");
        let mut w = env.open_write(&path).unwrap();
        w.append(b"hello ").unwrap();
        w.append(b"world").unwrap();
        w.sync().unwrap();
        assert_eq!(env.read(&path).unwrap(), b"hello world");
        assert_eq!(env.list(dir).unwrap(), vec!["000001.log".to_string()]);

        env.rename(&path, &dir.join("000002.log")).unwrap();
        assert!(!env.exists(&path));
        assert_eq!(env.read(&dir.join("000002.log")).unwrap(), b"hello world");

        env.remove(&dir.join("000002.log")).unwrap();
        assert!(env
            .read(&dir.join("000002.log"))
            .unwrap_err()
            .is_not_found());
    }

    #[test]
    fn crash_after_fails_nth_op_and_poisons() {
        let env = FaultEnv::new(1);
        env.create_dir_all(Path::new("/d")).unwrap();
        let mut w = env.open_write(Path::new("/d/f")).unwrap();
        env.crash_after(2);
        w.append(b"a").unwrap(); // op 1
        assert!(w.append(b"b").is_err()); // op 2: crash
        assert!(env.is_poisoned());
        assert!(w.sync().is_err());
        assert!(env.rename(Path::new("/d/f"), Path::new("/d/g")).is_err());
        // Reads still work while "crashed" (the process is gone; the
        // disk is not).
        assert_eq!(env.read(Path::new("/d/f")).unwrap(), b"a");
    }

    #[test]
    fn power_loss_drops_unsynced_suffix() {
        let env = FaultEnv::new(42);
        env.create_dir_all(Path::new("/d")).unwrap();
        let mut w = env.open_write(Path::new("/d/f")).unwrap();
        w.append(b"durable").unwrap();
        w.sync().unwrap();
        w.append(b"-volatile").unwrap();
        env.power_loss();
        let data = env.read(Path::new("/d/f")).unwrap();
        // The synced prefix always survives byte-for-byte.
        assert!(data.len() >= 7);
        assert_eq!(&data[..7], b"durable");
        // Whatever survived is now fully durable.
        let (len, synced) = env.file_state(Path::new("/d/f")).unwrap();
        assert_eq!(len, synced);
        assert!(!env.is_poisoned());
    }

    #[test]
    fn power_loss_is_deterministic_for_a_seed() {
        let survivors: Vec<Vec<u8>> = (0..2)
            .map(|_| {
                let env = FaultEnv::new(99);
                env.create_dir_all(Path::new("/d")).unwrap();
                let mut w = env.open_write(Path::new("/d/f")).unwrap();
                w.append(&[0xAAu8; 64]).unwrap();
                w.sync().unwrap();
                w.append(&[0xBBu8; 64]).unwrap();
                env.power_loss();
                env.read(Path::new("/d/f")).unwrap()
            })
            .collect();
        assert_eq!(survivors[0], survivors[1]);
    }

    #[test]
    fn history_records_durability_ops() {
        let env = FaultEnv::new(3);
        env.create_dir_all(Path::new("/d")).unwrap();
        let mut w = env.open_write(Path::new("/d/f")).unwrap();
        w.append(b"x").unwrap();
        w.sync().unwrap();
        env.rename(Path::new("/d/f"), Path::new("/d/g")).unwrap();
        env.remove(Path::new("/d/g")).unwrap();
        let h = env.history();
        assert_eq!(h.len(), 4);
        assert!(matches!(h[0], FaultOp::Write(_, 1)));
        assert!(matches!(h[1], FaultOp::Sync(_)));
        assert!(matches!(h[2], FaultOp::Rename(_, _)));
        assert!(matches!(h[3], FaultOp::Remove(_)));
        assert_eq!(env.op_count(), 3); // removes are not crash points
    }
}
