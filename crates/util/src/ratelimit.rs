//! Token-bucket I/O rate limiting for background work.
//!
//! Compaction rewrites the same bytes many times over; left unchecked,
//! that device traffic competes with foreground WAL fsyncs and turns
//! into the throughput variance "On Performance Stability in LSM-based
//! Storage Systems" (Luo & Carey) measures. An [`IoRateLimiter`] is a
//! single shared token bucket — `bytes_per_sec` refill, `burst_bytes`
//! capacity — that every background byte is charged against at the
//! [`crate::env::Env`] write seam.
//!
//! Two priorities split the bucket ([`IoPriority`]):
//!
//! - **High** (memtable flushes, WAL pre-allocation): may drain the
//!   bucket to empty and may overdraw it into deficit — a flush is
//!   never blocked behind compaction traffic, it only pushes the debt
//!   forward.
//! - **Low** (compaction rewrites): must leave [`HIGH_PRIO_RESERVE`]
//!   of the bucket untouched, so a concurrently arriving flush always
//!   finds tokens.
//!
//! A limiter built with `bytes_per_sec == 0` is *unlimited*: every
//! charge returns immediately and records nothing. This is the default
//! everywhere, so existing stores are unaffected unless an operator
//! opts in.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

/// Fraction of the bucket reserved for [`IoPriority::High`] traffic;
/// low-priority charges wait until the bucket holds at least this
/// share of its burst capacity *plus* their own cost.
pub const HIGH_PRIO_RESERVE: f64 = 0.25;

/// Who is asking for I/O budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoPriority {
    /// Foreground-coupled background work: memtable flushes and WAL
    /// pre-allocation. Never starved by compaction.
    High,
    /// Pure background rewrites: compaction.
    Low,
}

/// Point-in-time counters of a limiter (all cumulative since
/// construction). Consumed bytes are charged bytes, whether or not the
/// charge had to wait.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoRateLimiterStats {
    /// Bytes charged at [`IoPriority::High`].
    pub consumed_high: u64,
    /// Bytes charged at [`IoPriority::Low`].
    pub consumed_low: u64,
    /// Charges that had to wait for refill.
    pub throttle_waits: u64,
    /// Total time spent waiting, in nanoseconds.
    pub throttle_wait_ns: u64,
}

struct Bucket {
    /// Available budget in bytes. May go negative (deficit) when a
    /// high-priority charge overdraws.
    tokens: f64,
    /// Last refill instant.
    refilled_at: Instant,
}

/// A shared token bucket charging background I/O in bytes.
pub struct IoRateLimiter {
    /// Refill rate; `0` means unlimited (all methods are no-ops).
    bytes_per_sec: u64,
    /// Bucket capacity (largest instantaneous burst).
    burst_bytes: u64,
    bucket: Mutex<Bucket>,
    refill_cv: Condvar,
    consumed_high: AtomicU64,
    consumed_low: AtomicU64,
    throttle_waits: AtomicU64,
    throttle_wait_ns: AtomicU64,
}

impl std::fmt::Debug for IoRateLimiter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IoRateLimiter")
            .field("bytes_per_sec", &self.bytes_per_sec)
            .field("burst_bytes", &self.burst_bytes)
            .finish()
    }
}

impl IoRateLimiter {
    /// A limiter refilling at `bytes_per_sec` with `burst_bytes`
    /// capacity. `bytes_per_sec == 0` builds an unlimited limiter;
    /// a zero burst is raised to one refill-second of budget.
    pub fn new(bytes_per_sec: u64, burst_bytes: u64) -> IoRateLimiter {
        let burst = if burst_bytes == 0 {
            bytes_per_sec
        } else {
            burst_bytes
        };
        IoRateLimiter {
            bytes_per_sec,
            burst_bytes: burst,
            bucket: Mutex::new(Bucket {
                tokens: burst as f64,
                refilled_at: Instant::now(),
            }),
            refill_cv: Condvar::new(),
            consumed_high: AtomicU64::new(0),
            consumed_low: AtomicU64::new(0),
            throttle_waits: AtomicU64::new(0),
            throttle_wait_ns: AtomicU64::new(0),
        }
    }

    /// A limiter that never throttles and never counts.
    pub fn unlimited() -> IoRateLimiter {
        IoRateLimiter::new(0, 0)
    }

    /// `true` when this limiter throttles nothing.
    pub fn is_unlimited(&self) -> bool {
        self.bytes_per_sec == 0
    }

    /// Configured refill rate (0 = unlimited).
    pub fn bytes_per_sec(&self) -> u64 {
        self.bytes_per_sec
    }

    /// Configured burst capacity.
    pub fn burst_bytes(&self) -> u64 {
        self.burst_bytes
    }

    /// Charges `bytes` at `prio`, blocking until the bucket can cover
    /// the charge under the priority's rule. Returns the time spent
    /// waiting (zero for an unlimited limiter).
    pub fn acquire(&self, bytes: u64, prio: IoPriority) -> Duration {
        if self.bytes_per_sec == 0 || bytes == 0 {
            return Duration::ZERO;
        }
        match prio {
            IoPriority::High => self.consumed_high.fetch_add(bytes, Ordering::Relaxed),
            IoPriority::Low => self.consumed_low.fetch_add(bytes, Ordering::Relaxed),
        };
        // Clamp a single charge so one oversized request (a table
        // larger than the bucket) cannot deadlock: high may use the
        // whole burst, low only the share above the reserve.
        let (cost, floor) = match prio {
            // High may overdraw: it only needs the bucket non-negative.
            IoPriority::High => ((bytes as f64).min(self.burst_bytes as f64), 0.0),
            // Low must leave headroom for a concurrently arriving flush.
            IoPriority::Low => {
                let reserve = HIGH_PRIO_RESERVE * self.burst_bytes as f64;
                let cost = (bytes as f64).min(self.burst_bytes as f64 - reserve);
                (cost, reserve + cost)
            }
        };
        let start = Instant::now();
        let mut waited = false;
        let mut bucket = self.bucket.lock();
        loop {
            self.refill(&mut bucket);
            let enough = match prio {
                IoPriority::High => bucket.tokens >= 0.0,
                IoPriority::Low => bucket.tokens >= floor,
            };
            if enough {
                bucket.tokens -= cost;
                break;
            }
            waited = true;
            let deficit = (floor - bucket.tokens).max(cost);
            let wait = Duration::from_secs_f64(deficit / self.bytes_per_sec as f64)
                .min(Duration::from_millis(100));
            self.refill_cv.wait_for(&mut bucket, wait);
        }
        drop(bucket);
        let elapsed = start.elapsed();
        if waited {
            self.throttle_waits.fetch_add(1, Ordering::Relaxed);
            self.throttle_wait_ns
                .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
        }
        elapsed
    }

    fn refill(&self, bucket: &mut Bucket) {
        let now = Instant::now();
        let elapsed = now.duration_since(bucket.refilled_at);
        bucket.refilled_at = now;
        bucket.tokens = (bucket.tokens + elapsed.as_secs_f64() * self.bytes_per_sec as f64)
            .min(self.burst_bytes as f64);
    }

    /// Cumulative counters.
    pub fn stats(&self) -> IoRateLimiterStats {
        IoRateLimiterStats {
            consumed_high: self.consumed_high.load(Ordering::Relaxed),
            consumed_low: self.consumed_low.load(Ordering::Relaxed),
            throttle_waits: self.throttle_waits.load(Ordering::Relaxed),
            throttle_wait_ns: self.throttle_wait_ns.load(Ordering::Relaxed),
        }
    }
}

/// A [`crate::env::WritableFile`] wrapper charging every appended byte
/// against a shared [`IoRateLimiter`] before it reaches the inner
/// file. This is the `Env` write seam the store's flush and compaction
/// paths are limited at.
pub struct RateLimitedFile {
    inner: Box<dyn crate::env::WritableFile>,
    limiter: std::sync::Arc<IoRateLimiter>,
    prio: IoPriority,
}

impl RateLimitedFile {
    /// Wraps `inner` so appends are charged to `limiter` at `prio`.
    pub fn new(
        inner: Box<dyn crate::env::WritableFile>,
        limiter: std::sync::Arc<IoRateLimiter>,
        prio: IoPriority,
    ) -> RateLimitedFile {
        RateLimitedFile {
            inner,
            limiter,
            prio,
        }
    }
}

impl crate::env::WritableFile for RateLimitedFile {
    fn append(&mut self, data: &[u8]) -> crate::error::Result<()> {
        self.limiter.acquire(data.len() as u64, self.prio);
        self.inner.append(data)
    }

    fn flush(&mut self) -> crate::error::Result<()> {
        self.inner.flush()
    }

    fn sync(&mut self) -> crate::error::Result<()> {
        self.inner.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn unlimited_never_waits() {
        let l = IoRateLimiter::unlimited();
        assert!(l.is_unlimited());
        assert_eq!(l.acquire(u64::MAX, IoPriority::Low), Duration::ZERO);
        assert_eq!(l.stats(), IoRateLimiterStats::default());
    }

    #[test]
    fn burst_passes_without_waiting() {
        let l = IoRateLimiter::new(1_000_000, 1_000_000);
        // Within burst and above the low-priority reserve: immediate.
        let waited = l.acquire(100_000, IoPriority::Low);
        assert!(waited < Duration::from_millis(50), "waited {waited:?}");
        let s = l.stats();
        assert_eq!(s.consumed_low, 100_000);
        assert_eq!(s.throttle_waits, 0);
    }

    #[test]
    fn low_priority_throttles_when_bucket_drains() {
        // 10 MB/s, 100 KB burst: a 200 KB low-prio charge after the
        // bucket is drained must wait for refill.
        let l = IoRateLimiter::new(10_000_000, 100_000);
        l.acquire(100_000, IoPriority::High); // drain
        l.acquire(50_000, IoPriority::Low);
        let s = l.stats();
        assert_eq!(s.throttle_waits, 1);
        assert!(s.throttle_wait_ns > 0);
    }

    #[test]
    fn high_priority_overdraws_instead_of_waiting_behind_low() {
        let l = IoRateLimiter::new(10_000_000, 100_000);
        // Bucket full: a huge high-prio charge passes immediately by
        // overdrawing (clamped to one burst of cost).
        let waited = l.acquire(10_000_000, IoPriority::High);
        assert!(waited < Duration::from_millis(50), "waited {waited:?}");
        // The drained bucket then throttles the next low-priority charge.
        l.acquire(10_000, IoPriority::Low);
        assert_eq!(l.stats().throttle_waits, 1);
    }

    #[test]
    fn rate_limited_file_charges_appends() {
        use crate::env::{Env, FaultEnv};
        let env = FaultEnv::new(0);
        let inner = env.open_write(std::path::Path::new("/f")).unwrap();
        let limiter = Arc::new(IoRateLimiter::new(1_000_000, 1_000_000));
        let mut f = RateLimitedFile::new(inner, Arc::clone(&limiter), IoPriority::High);
        use crate::env::WritableFile;
        f.append(b"hello").unwrap();
        f.sync().unwrap();
        assert_eq!(limiter.stats().consumed_high, 5);
    }

    #[test]
    fn concurrent_charges_converge_to_configured_rate() {
        // 4 threads pushing 25 KB charges through a 100 KB/s limiter:
        // total admitted over ~0.3 s should be near 100 KB burst +
        // 0.3 s * 100 KB/s, far below the unthrottled total.
        let l = Arc::new(IoRateLimiter::new(100_000, 10_000));
        let start = Instant::now();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let l = Arc::clone(&l);
                s.spawn(move || {
                    for _ in 0..3 {
                        l.acquire(10_000, IoPriority::Low);
                    }
                });
            }
        });
        let elapsed = start.elapsed();
        // 120 KB of low-prio charges at 100 KB/s with a 10 KB bucket
        // (7.5 KB usable below the reserve) cannot finish instantly.
        assert!(
            elapsed >= Duration::from_millis(500),
            "12 charges x 10 KB drained in {elapsed:?}"
        );
    }
}
