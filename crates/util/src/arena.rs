//! Lock-free bump allocator backing in-memory components.
//!
//! The paper implements "a non-blocking memory allocator" (§4, citing
//! Michael '04) for skip-list nodes. Ours is a chunked bump allocator:
//! the hot path is a single `fetch_add` on the current chunk's offset;
//! a mutex is taken only on the cold path that installs a new chunk.
//!
//! Allocations are never freed individually — the entire arena is
//! reclaimed when the owning component (memtable) is dropped after its
//! merge into the disk component, exactly matching the paper's component
//! lifecycle ("old versions ... exist at least until the component is
//! discarded following its merge into disk", §3.2.1).

use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};

use parking_lot::Mutex;

/// Default chunk size: 1 MiB of 8-byte words.
const DEFAULT_CHUNK_BYTES: usize = 1 << 20;

/// One allocation chunk; `data` is 8-byte aligned storage.
struct Chunk {
    data: Box<[u64]>,
    /// Next free byte offset within `data`. May transiently exceed the
    /// capacity when concurrent allocations race past the end.
    pos: AtomicUsize,
}

impl Chunk {
    // Boxing is load-bearing: `Arena::current` stores a raw pointer to
    // the chunk, so it needs a stable heap address.
    #[allow(clippy::unnecessary_box_returns)]
    fn new(bytes: usize) -> Box<Chunk> {
        let words = bytes.div_ceil(8);
        Box::new(Chunk {
            data: vec![0u64; words].into_boxed_slice(),
            pos: AtomicUsize::new(0),
        })
    }

    fn capacity(&self) -> usize {
        self.data.len() * 8
    }

    fn base(&self) -> *mut u8 {
        self.data.as_ptr() as *mut u8
    }
}

/// A concurrent, grow-only bump allocator.
///
/// All returned pointers remain valid (and their contents stable unless
/// the caller mutates them) until the arena is dropped.
///
/// # Examples
///
/// ```
/// let arena = clsm_util::arena::Arena::new();
/// let s = arena.alloc_bytes(b"hello");
/// assert_eq!(s, b"hello");
/// ```
pub struct Arena {
    /// Chunk allocations are served from; points into `chunks`.
    current: AtomicPtr<Chunk>,
    /// All chunks ever allocated; boxes give the chunks stable
    /// addresses even as the vector reallocates.
    #[allow(clippy::vec_box)]
    chunks: Mutex<Vec<Box<Chunk>>>,
    /// Total bytes handed out (for memtable size accounting).
    allocated: AtomicUsize,
    chunk_bytes: usize,
}

impl Arena {
    /// Creates an arena with the default 1 MiB chunk size.
    pub fn new() -> Self {
        Self::with_chunk_size(DEFAULT_CHUNK_BYTES)
    }

    /// Creates an arena with a custom chunk size (rounded up to 8 bytes).
    pub fn with_chunk_size(chunk_bytes: usize) -> Self {
        let first = Chunk::new(chunk_bytes.max(64));
        let ptr = &*first as *const Chunk as *mut Chunk;
        Arena {
            current: AtomicPtr::new(ptr),
            chunks: Mutex::new(vec![first]),
            allocated: AtomicUsize::new(0),
            chunk_bytes: chunk_bytes.max(64),
        }
    }

    /// Allocates `size` bytes aligned to 8, returning a pointer valid for
    /// the arena's lifetime. The memory is zero-initialized.
    ///
    /// Never returns null; grows the arena as needed.
    pub fn alloc(&self, size: usize) -> *mut u8 {
        let aligned = size.div_ceil(8) * 8;
        self.allocated.fetch_add(aligned, Ordering::Relaxed);
        loop {
            // SAFETY: `current` always points at a chunk owned by
            // `self.chunks`, which only grows and is dropped with `self`.
            let chunk = unsafe { &*self.current.load(Ordering::Acquire) };
            let offset = chunk.pos.fetch_add(aligned, Ordering::Relaxed);
            if offset + aligned <= chunk.capacity() {
                // SAFETY: `[offset, offset + aligned)` is in bounds and,
                // because the bump offset is claimed atomically, disjoint
                // from every other allocation.
                return unsafe { chunk.base().add(offset) };
            }
            self.grow(aligned);
        }
    }

    /// Cold path: installs a new chunk big enough for `size` bytes.
    fn grow(&self, size: usize) {
        let mut chunks = self.chunks.lock();
        // Another thread may have already grown while we waited.
        // SAFETY: same invariant as in `alloc`.
        let cur = unsafe { &*self.current.load(Ordering::Acquire) };
        if cur.pos.load(Ordering::Relaxed) + size <= cur.capacity() {
            return;
        }
        let new = Chunk::new(self.chunk_bytes.max(size));
        let ptr = &*new as *const Chunk as *mut Chunk;
        chunks.push(new);
        self.current.store(ptr, Ordering::Release);
    }

    /// Copies `data` into the arena and returns the stable copy.
    pub fn alloc_bytes(&self, data: &[u8]) -> &[u8] {
        if data.is_empty() {
            return &[];
        }
        let dst = self.alloc(data.len());
        // SAFETY: `dst` is a fresh, disjoint allocation of `data.len()`
        // bytes; the source and destination cannot overlap.
        unsafe {
            std::ptr::copy_nonoverlapping(data.as_ptr(), dst, data.len());
            std::slice::from_raw_parts(dst, data.len())
        }
    }

    /// Approximate number of bytes handed out so far.
    pub fn memory_usage(&self) -> usize {
        self.allocated.load(Ordering::Relaxed)
    }
}

impl Default for Arena {
    fn default() -> Self {
        Arena::new()
    }
}

impl std::fmt::Debug for Arena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Arena")
            .field("allocated", &self.memory_usage())
            .field("chunks", &self.chunks.lock().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn alloc_returns_aligned_zeroed_memory() {
        let arena = Arena::new();
        for size in [1usize, 7, 8, 9, 63, 64, 1024] {
            let p = arena.alloc(size);
            assert_eq!(p as usize % 8, 0, "size={size}");
            // SAFETY: freshly allocated `size` bytes, zeroed by the chunk.
            let s = unsafe { std::slice::from_raw_parts(p, size) };
            assert!(s.iter().all(|&b| b == 0));
        }
    }

    #[test]
    fn alloc_bytes_roundtrips() {
        let arena = Arena::new();
        let a = arena.alloc_bytes(b"foo");
        let b = arena.alloc_bytes(b"barbaz");
        let empty = arena.alloc_bytes(b"");
        assert_eq!(a, b"foo");
        assert_eq!(b, b"barbaz");
        assert!(empty.is_empty());
    }

    #[test]
    fn grows_past_chunk_boundary() {
        let arena = Arena::with_chunk_size(128);
        let mut ptrs = Vec::new();
        for i in 0..100u8 {
            let data = vec![i; 40];
            ptrs.push((arena.alloc_bytes(&data), i));
        }
        for (slice, i) in ptrs {
            assert!(slice.iter().all(|&b| b == i));
        }
        assert!(arena.memory_usage() >= 100 * 40);
    }

    #[test]
    fn oversized_allocation_gets_dedicated_chunk() {
        let arena = Arena::with_chunk_size(64);
        let big = vec![0xabu8; 10_000];
        let copy = arena.alloc_bytes(&big);
        assert_eq!(copy, big.as_slice());
    }

    #[test]
    fn concurrent_allocations_are_disjoint() {
        let arena = Arc::new(Arena::with_chunk_size(4096));
        let mut handles = Vec::new();
        for t in 0..8u8 {
            let arena = Arc::clone(&arena);
            handles.push(std::thread::spawn(move || {
                let mut slices = Vec::new();
                for i in 0..500usize {
                    let val = t.wrapping_mul(31).wrapping_add(i as u8);
                    let data = vec![val; 1 + (i % 57)];
                    let s = arena.alloc_bytes(&data);
                    slices.push((s.as_ptr() as usize, s.len(), val));
                }
                slices
            }));
        }
        let mut all: Vec<(usize, usize, u8)> = Vec::new();
        for h in handles {
            all.extend(h.join().unwrap());
        }
        // No two allocations overlap.
        all.sort_unstable();
        for w in all.windows(2) {
            assert!(w[0].0 + w[0].1 <= w[1].0, "overlap: {:?} {:?}", w[0], w[1]);
        }
        // And every allocation still holds its pattern.
        for (ptr, len, val) in all {
            // SAFETY: pointers were produced by `alloc_bytes` on an arena
            // that is still alive.
            let s = unsafe { std::slice::from_raw_parts(ptr as *const u8, len) };
            assert!(s.iter().all(|&b| b == val));
        }
    }
}
