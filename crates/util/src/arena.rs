//! Lock-free bump allocator backing in-memory components.
//!
//! The paper implements "a non-blocking memory allocator" (§4, citing
//! Michael '04) for skip-list nodes. Ours is a chunked bump allocator
//! with **thread-local chunks**: each allocating thread bumps a plain
//! (non-atomic) offset into a chunk it alone fills, so the hot path
//! touches no shared cache line at all. Only the cold path that
//! installs a new chunk takes a mutex, and the byte accounting behind
//! [`Arena::memory_usage`] goes to cache-line-padded per-thread
//! stripes.
//!
//! # Thread-local chunk lifecycle
//!
//! A thread's cached chunk is keyed by the owning arena's globally
//! unique, never-reused id. When a memtable rotates and its arena is
//! dropped, stale cache entries for the dead arena are left behind but
//! can never be dereferenced again: a pointer is only used when its
//! entry's id matches the id of the arena the caller holds a live
//! reference to. This gives the reclaim-on-rotation safety of an epoch
//! scheme without any epoch bookkeeping on the allocation path.
//!
//! Allocations are never freed individually — the entire arena is
//! reclaimed when the owning component (memtable) is dropped after its
//! merge into the disk component, exactly matching the paper's component
//! lifecycle ("old versions ... exist at least until the component is
//! discarded following its merge into disk", §3.2.1).

use std::cell::RefCell;
use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};

use parking_lot::Mutex;

/// Default chunk size: 1 MiB of 8-byte words.
const DEFAULT_CHUNK_BYTES: usize = 1 << 20;

/// Stripes for the `allocated` byte accounting; padded so concurrent
/// writers on different threads never share a counter cache line.
const ALLOC_STRIPES: usize = 16;

/// Per-thread cache entries kept before evicting the oldest (a thread
/// usually touches one or two live arenas: `Pm` and, briefly, `P'm`).
const TL_CACHE_ENTRIES: usize = 4;

/// One allocation chunk; `data` is 8-byte aligned storage.
struct Chunk {
    data: Box<[u64]>,
    /// Next free byte offset within `data`. Only used on the shared
    /// fallback path; thread-private chunks track their offset in
    /// thread-local storage instead. May transiently exceed the
    /// capacity when concurrent allocations race past the end.
    pos: AtomicUsize,
}

impl Chunk {
    // Boxing is load-bearing: chunk pointers escape into thread-local
    // caches and `Arena::shared`, so chunks need stable heap addresses.
    #[allow(clippy::unnecessary_box_returns)]
    fn new(bytes: usize) -> Box<Chunk> {
        let words = bytes.div_ceil(8);
        Box::new(Chunk {
            data: vec![0u64; words].into_boxed_slice(),
            pos: AtomicUsize::new(0),
        })
    }

    fn capacity(&self) -> usize {
        self.data.len() * 8
    }

    fn base(&self) -> *mut u8 {
        self.data.as_ptr() as *mut u8
    }
}

/// A cache-line-padded byte counter (one `allocated` stripe).
#[repr(align(64))]
#[derive(Default)]
struct PaddedCounter(AtomicUsize);

/// One thread's bump cursor into a chunk of one arena.
struct TlChunk {
    /// Id of the arena the chunk belongs to (never-reused global id).
    arena_id: u64,
    base: *mut u8,
    /// Next free byte offset — plain, because the chunk is filled by
    /// this thread alone. (Readers of *allocated bytes* synchronize
    /// through the data structure built on top, e.g. skip-list links.)
    pos: usize,
    cap: usize,
}

thread_local! {
    /// This thread's chunk cursors, most recently used last.
    static TL_CHUNKS: RefCell<Vec<TlChunk>> = const { RefCell::new(Vec::new()) };
}

/// Source of never-reused arena ids.
static NEXT_ARENA_ID: AtomicU64 = AtomicU64::new(1);

/// A concurrent, grow-only bump allocator with thread-local chunks.
///
/// All returned pointers remain valid (and their contents stable unless
/// the caller mutates them) until the arena is dropped.
///
/// # Examples
///
/// ```
/// let arena = clsm_util::arena::Arena::new();
/// let s = arena.alloc_bytes(b"hello");
/// assert_eq!(s, b"hello");
/// ```
pub struct Arena {
    /// Globally unique, never reused; keys thread-local chunk caches.
    id: u64,
    /// Shared fallback chunk, for allocations made while thread-local
    /// storage is unavailable (thread teardown); points into `chunks`.
    shared: AtomicPtr<Chunk>,
    /// All chunks ever allocated; boxes give the chunks stable
    /// addresses even as the vector reallocates.
    #[allow(clippy::vec_box)]
    chunks: Mutex<Vec<Box<Chunk>>>,
    /// Total bytes handed out (for memtable size accounting), striped
    /// by thread so the hot path never contends on one counter line.
    allocated: Box<[PaddedCounter]>,
    chunk_bytes: usize,
}

impl Arena {
    /// Creates an arena with the default 1 MiB chunk size.
    pub fn new() -> Self {
        Self::with_chunk_size(DEFAULT_CHUNK_BYTES)
    }

    /// Creates an arena with a custom chunk size (rounded up to 8 bytes).
    pub fn with_chunk_size(chunk_bytes: usize) -> Self {
        let chunk_bytes = chunk_bytes.max(64);
        let first = Chunk::new(chunk_bytes);
        let ptr = &*first as *const Chunk as *mut Chunk;
        Arena {
            id: NEXT_ARENA_ID.fetch_add(1, Ordering::Relaxed),
            shared: AtomicPtr::new(ptr),
            chunks: Mutex::new(vec![first]),
            allocated: (0..ALLOC_STRIPES)
                .map(|_| PaddedCounter::default())
                .collect(),
            chunk_bytes,
        }
    }

    /// Allocates `size` bytes aligned to 8, returning a pointer valid for
    /// the arena's lifetime. The memory is zero-initialized.
    ///
    /// Never returns null; grows the arena as needed.
    pub fn alloc(&self, size: usize) -> *mut u8 {
        let aligned = size.div_ceil(8) * 8;
        self.charge(aligned);
        if aligned > self.chunk_bytes {
            // Oversized: a dedicated chunk, never cached.
            return self.install_chunk(aligned);
        }
        TL_CHUNKS
            .try_with(|cache| self.alloc_thread_local(&mut cache.borrow_mut(), aligned))
            .unwrap_or_else(|_| self.alloc_shared(aligned))
    }

    /// The contention-free hot path: bump this thread's private cursor.
    fn alloc_thread_local(&self, cache: &mut Vec<TlChunk>, aligned: usize) -> *mut u8 {
        if let Some(entry) = cache.iter_mut().find(|e| e.arena_id == self.id) {
            if entry.pos + aligned <= entry.cap {
                let p = unsafe { entry.base.add(entry.pos) };
                entry.pos += aligned;
                return p;
            }
        }
        // Miss or full: carve a fresh private chunk (cold path, one
        // mutex acquisition per chunk_bytes of allocation per thread).
        let base = self.install_chunk(self.chunk_bytes);
        cache.retain(|e| e.arena_id != self.id);
        if cache.len() >= TL_CACHE_ENTRIES {
            // Evict the least recently installed entry. Entries for
            // dropped arenas die here too, eventually.
            cache.remove(0);
        }
        cache.push(TlChunk {
            arena_id: self.id,
            base,
            pos: aligned,
            cap: self.chunk_bytes,
        });
        base
    }

    /// Fallback used when thread-local storage is gone (thread
    /// teardown): the pre-striping shared-chunk path.
    fn alloc_shared(&self, aligned: usize) -> *mut u8 {
        loop {
            // SAFETY: `shared` always points at a chunk owned by
            // `self.chunks`, which only grows and is dropped with `self`.
            let chunk = unsafe { &*self.shared.load(Ordering::Acquire) };
            let offset = chunk.pos.fetch_add(aligned, Ordering::Relaxed);
            if offset + aligned <= chunk.capacity() {
                // SAFETY: `[offset, offset + aligned)` is in bounds and,
                // because the bump offset is claimed atomically, disjoint
                // from every other allocation.
                return unsafe { chunk.base().add(offset) };
            }
            self.grow_shared(aligned);
        }
    }

    /// Registers a new chunk of at least `bytes` and returns its base.
    /// The chunk is private to the caller: nothing else sees it.
    fn install_chunk(&self, bytes: usize) -> *mut u8 {
        let chunk = Chunk::new(bytes);
        let base = chunk.base();
        self.chunks.lock().push(chunk);
        base
    }

    /// Cold path of [`Arena::alloc_shared`]: installs a new shared
    /// chunk big enough for `size` bytes.
    fn grow_shared(&self, size: usize) {
        let mut chunks = self.chunks.lock();
        // Another thread may have already grown while we waited.
        // SAFETY: same invariant as in `alloc_shared`.
        let cur = unsafe { &*self.shared.load(Ordering::Acquire) };
        if cur.pos.load(Ordering::Relaxed) + size <= cur.capacity() {
            return;
        }
        let new = Chunk::new(self.chunk_bytes.max(size));
        let ptr = &*new as *const Chunk as *mut Chunk;
        chunks.push(new);
        self.shared.store(ptr, Ordering::Release);
    }

    /// Adds `bytes` to this thread's accounting stripe.
    fn charge(&self, bytes: usize) {
        let stripe = crate::tid::thread_index() % self.allocated.len();
        self.allocated[stripe].0.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Copies `data` into the arena and returns the stable copy.
    pub fn alloc_bytes(&self, data: &[u8]) -> &[u8] {
        if data.is_empty() {
            return &[];
        }
        let dst = self.alloc(data.len());
        // SAFETY: `dst` is a fresh, disjoint allocation of `data.len()`
        // bytes; the source and destination cannot overlap.
        unsafe {
            std::ptr::copy_nonoverlapping(data.as_ptr(), dst, data.len());
            std::slice::from_raw_parts(dst, data.len())
        }
    }

    /// Approximate number of bytes handed out so far.
    pub fn memory_usage(&self) -> usize {
        self.allocated
            .iter()
            .map(|c| c.0.load(Ordering::Relaxed))
            .sum()
    }
}

impl Default for Arena {
    fn default() -> Self {
        Arena::new()
    }
}

impl std::fmt::Debug for Arena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Arena")
            .field("id", &self.id)
            .field("allocated", &self.memory_usage())
            .field("chunks", &self.chunks.lock().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn alloc_returns_aligned_zeroed_memory() {
        let arena = Arena::new();
        for size in [1usize, 7, 8, 9, 63, 64, 1024] {
            let p = arena.alloc(size);
            assert_eq!(p as usize % 8, 0, "size={size}");
            // SAFETY: freshly allocated `size` bytes, zeroed by the chunk.
            let s = unsafe { std::slice::from_raw_parts(p, size) };
            assert!(s.iter().all(|&b| b == 0));
        }
    }

    #[test]
    fn alloc_bytes_roundtrips() {
        let arena = Arena::new();
        let a = arena.alloc_bytes(b"foo");
        let b = arena.alloc_bytes(b"barbaz");
        let empty = arena.alloc_bytes(b"");
        assert_eq!(a, b"foo");
        assert_eq!(b, b"barbaz");
        assert!(empty.is_empty());
    }

    #[test]
    fn grows_past_chunk_boundary() {
        let arena = Arena::with_chunk_size(128);
        let mut ptrs = Vec::new();
        for i in 0..100u8 {
            let data = vec![i; 40];
            ptrs.push((arena.alloc_bytes(&data), i));
        }
        for (slice, i) in ptrs {
            assert!(slice.iter().all(|&b| b == i));
        }
        assert!(arena.memory_usage() >= 100 * 40);
    }

    #[test]
    fn oversized_allocation_gets_dedicated_chunk() {
        let arena = Arena::with_chunk_size(64);
        let big = vec![0xabu8; 10_000];
        let copy = arena.alloc_bytes(&big);
        assert_eq!(copy, big.as_slice());
    }

    #[test]
    fn concurrent_allocations_are_disjoint() {
        let arena = Arc::new(Arena::with_chunk_size(4096));
        let mut handles = Vec::new();
        for t in 0..8u8 {
            let arena = Arc::clone(&arena);
            handles.push(std::thread::spawn(move || {
                let mut slices = Vec::new();
                for i in 0..500usize {
                    let val = t.wrapping_mul(31).wrapping_add(i as u8);
                    let data = vec![val; 1 + (i % 57)];
                    let s = arena.alloc_bytes(&data);
                    slices.push((s.as_ptr() as usize, s.len(), val));
                }
                slices
            }));
        }
        let mut all: Vec<(usize, usize, u8)> = Vec::new();
        for h in handles {
            all.extend(h.join().unwrap());
        }
        // No two allocations overlap.
        all.sort_unstable();
        for w in all.windows(2) {
            assert!(w[0].0 + w[0].1 <= w[1].0, "overlap: {:?} {:?}", w[0], w[1]);
        }
        // And every allocation still holds its pattern.
        for (ptr, len, val) in all {
            // SAFETY: pointers were produced by `alloc_bytes` on an arena
            // that is still alive.
            let s = unsafe { std::slice::from_raw_parts(ptr as *const u8, len) };
            assert!(s.iter().all(|&b| b == val));
        }
    }

    #[test]
    fn one_thread_many_arenas_cache_rollover() {
        // More live arenas than the thread-local cache holds: every
        // allocation must still land correctly as entries churn.
        let arenas: Vec<Arena> = (0..TL_CACHE_ENTRIES + 3)
            .map(|_| Arena::with_chunk_size(256))
            .collect();
        for round in 0..50u8 {
            for (i, arena) in arenas.iter().enumerate() {
                let data = vec![round.wrapping_add(i as u8); 24];
                assert_eq!(arena.alloc_bytes(&data), data.as_slice());
            }
        }
        for arena in &arenas {
            assert!(arena.memory_usage() >= 50 * 24);
        }
    }

    #[test]
    fn dropped_arena_entries_never_resurrect() {
        // Interleave allocations with arena drops on one thread: new
        // arenas must never be served from a dead arena's cached chunk
        // (ids are never reused, so a hit implies a live chunk).
        let mut stable: Vec<(Arena, Vec<u8>)> = Vec::new();
        for i in 0..20u8 {
            let arena = Arena::with_chunk_size(512);
            let data = vec![i; 100];
            let slice = arena.alloc_bytes(&data).to_vec();
            assert_eq!(slice, data);
            if i % 3 == 0 {
                stable.push((arena, data));
            } // else: dropped here
        }
        for (arena, data) in &stable {
            // Old allocations still intact, and the arena still serves.
            assert_eq!(arena.alloc_bytes(data), data.as_slice());
        }
    }
}
