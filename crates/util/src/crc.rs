//! CRC32C (Castagnoli) checksums with LevelDB-style masking.
//!
//! The WAL and SSTable formats checksum every record/block. We use the
//! Castagnoli polynomial (the same one LevelDB and RocksDB use) with a
//! slicing-by-one table implementation, and the standard "masked CRC"
//! transform so that a CRC stored alongside the data it covers does not
//! checksum to a fixed point.

const CASTAGNOLI: u32 = 0x82f6_3b78;

/// Lookup table for byte-at-a-time CRC32C, built at compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut j = 0;
        while j < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ CASTAGNOLI
            } else {
                crc >> 1
            };
            j += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Computes the CRC32C of `data`.
pub fn crc32c(data: &[u8]) -> u32 {
    extend(0, data)
}

/// Extends a running CRC32C with more data.
pub fn extend(crc: u32, data: &[u8]) -> u32 {
    let mut crc = !crc;
    for &b in data {
        crc = TABLE[((crc ^ b as u32) & 0xff) as usize] ^ (crc >> 8);
    }
    !crc
}

const MASK_DELTA: u32 = 0xa282_ead8;

/// Masks a CRC so it can be stored next to the bytes it covers.
pub fn mask(crc: u32) -> u32 {
    crc.rotate_right(15).wrapping_add(MASK_DELTA)
}

/// Inverts [`mask`].
pub fn unmask(masked: u32) -> u32 {
    masked.wrapping_sub(MASK_DELTA).rotate_left(15)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Reference vectors from the CRC32C specification (RFC 3720).
        assert_eq!(crc32c(&[0u8; 32]), 0x8a91_36aa);
        assert_eq!(crc32c(&[0xffu8; 32]), 0x62a8_ab43);
        let ascending: Vec<u8> = (0u8..32).collect();
        assert_eq!(crc32c(&ascending), 0x46dd_794e);
        assert_eq!(crc32c(b"123456789"), 0xe306_9283);
    }

    #[test]
    fn extend_matches_whole() {
        let data = b"hello world, this is a crc test";
        let whole = crc32c(data);
        let split = extend(crc32c(&data[..10]), &data[10..]);
        assert_eq!(whole, split);
    }

    #[test]
    fn mask_roundtrip_and_nontrivial() {
        let crc = crc32c(b"foo");
        assert_eq!(unmask(mask(crc)), crc);
        assert_ne!(mask(crc), crc);
        assert_ne!(mask(mask(crc)), crc);
    }

    #[test]
    fn distinct_inputs_distinct_crcs() {
        assert_ne!(crc32c(b"a"), crc32c(b"b"));
        assert_ne!(crc32c(b""), crc32c(b"\0"));
    }
}
