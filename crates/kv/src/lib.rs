//! The uniform key-value store interface of the cLSM evaluation.
//!
//! Every evaluated system — `clsm::Db` and each concurrency-control
//! baseline — implements [`KvStore`], so the workload driver, trace
//! replayer, and benchmark harness treat them as interchangeable trait
//! objects. The trait lives in its own crate so that both the `clsm`
//! crate (which implements it for `Db`) and the baselines crate can
//! depend on it without a cycle.
//!
//! Design notes:
//!
//! - Point operations (`put`/`get`/`delete`) mirror the paper's API.
//! - [`KvStore::write_batch`] defaults to a non-atomic loop; systems
//!   with atomic batches (cLSM) override it.
//! - [`KvStore::snapshot`] returns a boxed [`KvSnapshot`] — a
//!   consistent read-only view. For cLSM this is a real multi-version
//!   snapshot; baselines capture their visible sequence number, which
//!   gives the same read-your-writes consistency their C++ models
//!   provide.
//! - [`KvStore::stats`] surfaces the system's metrics registry as a
//!   [`MetricsSnapshot`]; systems without one return an empty snapshot.

#![warn(missing_docs)]

pub use clsm_util::error::{Error, Result};
pub use clsm_util::metrics::MetricsSnapshot;

/// A consistent read-only view of a store at one point in time.
pub trait KvSnapshot: Send + Sync {
    /// Reads `key` as of this snapshot.
    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>>;

    /// Returns up to `limit` live pairs with keys `>= start`, in key
    /// order, as of this snapshot.
    fn scan(&self, start: &[u8], limit: usize) -> Result<Vec<(Vec<u8>, Vec<u8>)>>;
}

/// The operations every evaluated system supports.
///
/// `scan` corresponds to the paper's range queries (Figure 7b);
/// `put_if_absent` to the RMW benchmark (Figure 9).
pub trait KvStore: Send + Sync {
    /// Stores `value` under `key`.
    fn put(&self, key: &[u8], value: &[u8]) -> Result<()>;

    /// Returns the latest value of `key`.
    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>>;

    /// Deletes `key`.
    fn delete(&self, key: &[u8]) -> Result<()>;

    /// Applies a batch of puts (`Some`) and deletes (`None`).
    ///
    /// The default implementation applies the entries one by one and is
    /// therefore **not atomic**; systems with atomic batch support
    /// override it.
    fn write_batch(&self, batch: &[(Vec<u8>, Option<Vec<u8>>)]) -> Result<()> {
        for (key, value) in batch {
            match value {
                Some(v) => self.put(key, v)?,
                None => self.delete(key)?,
            }
        }
        Ok(())
    }

    /// Creates a consistent read-only view of the store.
    fn snapshot(&self) -> Result<Box<dyn KvSnapshot>>;

    /// Returns up to `limit` live pairs with keys `>= start`, in order,
    /// from a consistent view.
    fn scan(&self, start: &[u8], limit: usize) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        self.snapshot()?.scan(start, limit)
    }

    /// Atomically stores `value` if `key` is absent; returns `true` if
    /// stored.
    fn put_if_absent(&self, key: &[u8], value: &[u8]) -> Result<bool>;

    /// Blocks until pending flushes/compactions are done (benchmark
    /// warm-up/teardown hook).
    fn quiesce(&self) -> Result<()>;

    /// Short system name for reports (e.g. `"cLSM"`, `"LevelDB"`).
    fn name(&self) -> &'static str;

    /// The system's metrics, when it maintains a registry. Systems
    /// without one return an empty snapshot.
    fn stats(&self) -> MetricsSnapshot {
        MetricsSnapshot::default()
    }

    /// Per-component metric snapshots for composite systems (e.g. one
    /// per shard of a sharded store), as `(label, snapshot)` pairs.
    /// Monolithic systems return an empty list; [`KvStore::stats`]
    /// remains the aggregate view either way.
    fn shard_stats(&self) -> Vec<(String, MetricsSnapshot)> {
        Vec::new()
    }

    /// Write-amplification counters, when the system tracks them.
    fn write_amp(&self) -> Option<lsm_storage::store::WriteAmp> {
        None
    }
}
