//! The uniform key-value store interface of the cLSM evaluation.
//!
//! Every evaluated system — `clsm::Db` and each concurrency-control
//! baseline — implements [`KvStore`], so the workload driver, trace
//! replayer, and benchmark harness treat them as interchangeable trait
//! objects. The trait lives in its own crate so that both the `clsm`
//! crate (which implements it for `Db`) and the baselines crate can
//! depend on it without a cycle.
//!
//! Design notes:
//!
//! - [`KvStore::write`] is the single real mutation entry point: a
//!   [`WriteBatch`] (one or many puts/deletes) plus per-call
//!   [`WriteOptions`]. `put`/`delete` are provided shims over it, so
//!   workloads written against the point API automatically route
//!   through each system's batch path (for cLSM, the group-commit
//!   pipeline). Whether a multi-entry batch applies *atomically* is a
//!   per-system capability, not a trait guarantee.
//! - [`KvStore::write_batch`] is a deprecated shim retained for one
//!   release; migrate to [`KvStore::write`].
//! - [`KvStore::snapshot`] returns a boxed [`KvSnapshot`] — a
//!   consistent read-only view. For cLSM this is a real multi-version
//!   snapshot; baselines capture their visible sequence number, which
//!   gives the same read-your-writes consistency their C++ models
//!   provide.
//! - [`KvStore::stats`] surfaces the system's metrics registry as a
//!   [`MetricsSnapshot`]; systems without one return an empty snapshot.

#![warn(missing_docs)]

use std::ops::{Bound, RangeBounds};

pub use clsm_util::error::{Error, Result};
pub use clsm_util::metrics::MetricsSnapshot;

pub mod api;
pub mod record;
mod write;

pub use write::{WriteBatch, WriteOptions};

/// What a read-modify-write function wants done with the key.
///
/// Defined here (rather than in the `clsm` crate, where the paper's
/// Algorithm 3 lives) so that [`KvStore::read_modify_write`] can be
/// exercised black-box against every evaluated system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RmwDecision {
    /// Store this value as the new version.
    Update(Vec<u8>),
    /// Store a deletion marker.
    Delete,
    /// Leave the key untouched (e.g. put-if-absent finding a value).
    Abort,
}

/// Outcome of a read-modify-write.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RmwResult {
    /// `true` if a new version was written; `false` on `Abort`.
    pub committed: bool,
    /// The value the *final, successful* attempt observed (the input
    /// to the decision that was applied).
    pub previous: Option<Vec<u8>>,
}

/// An owned key range for [`KvSnapshot::scan`] / [`KvStore::scan`].
///
/// `RangeBounds` itself is not object-safe as a method parameter of a
/// trait-object store, so the scan API takes this concrete struct
/// instead; every standard range expression converts into it:
///
/// ```
/// use clsm_kv::ScanRange;
///
/// let everything: ScanRange = (..).into();
/// let from_b: ScanRange = (b"b".to_vec()..).into();
/// let b_to_d: ScanRange = (b"b".to_vec()..b"d".to_vec()).into();
/// let through_d: ScanRange = (..=b"d".to_vec()).into();
/// assert!(b_to_d.contains_key(b"c"));
/// assert!(!b_to_d.contains_key(b"d"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanRange {
    /// Lower bound on keys.
    pub start: Bound<Vec<u8>>,
    /// Upper bound on keys.
    pub end: Bound<Vec<u8>>,
}

impl Default for ScanRange {
    fn default() -> Self {
        ScanRange::all()
    }
}

impl ScanRange {
    /// The unbounded range (every key).
    pub fn all() -> Self {
        ScanRange {
            start: Bound::Unbounded,
            end: Bound::Unbounded,
        }
    }

    /// Keys `>= start`, unbounded above — the historical
    /// `scan(start, limit)` shape.
    pub fn from_start(start: impl Into<Vec<u8>>) -> Self {
        ScanRange {
            start: Bound::Included(start.into()),
            end: Bound::Unbounded,
        }
    }

    /// Copies any standard range expression into an owned `ScanRange`.
    pub fn new(range: impl RangeBounds<Vec<u8>>) -> Self {
        ScanRange {
            start: range.start_bound().cloned(),
            end: range.end_bound().cloned(),
        }
    }

    /// Whether `key` lies within the range.
    pub fn contains_key(&self, key: &[u8]) -> bool {
        (match &self.start {
            Bound::Included(s) => key >= s.as_slice(),
            Bound::Excluded(s) => key > s.as_slice(),
            Bound::Unbounded => true,
        }) && (match &self.end {
            Bound::Included(e) => key <= e.as_slice(),
            Bound::Excluded(e) => key < e.as_slice(),
            Bound::Unbounded => true,
        })
    }

    /// Normalizes to the `(inclusive start, exclusive end)` key pair
    /// iterators understand. Byte strings have an exact immediate
    /// lexicographic successor — `key ++ 0x00` — so an excluded start
    /// and an included end are both representable without loss.
    pub fn as_keys(&self) -> (Option<Vec<u8>>, Option<Vec<u8>>) {
        fn successor(key: &[u8]) -> Vec<u8> {
            let mut s = Vec::with_capacity(key.len() + 1);
            s.extend_from_slice(key);
            s.push(0);
            s
        }
        let start = match &self.start {
            Bound::Included(k) => Some(k.clone()),
            Bound::Excluded(k) => Some(successor(k)),
            Bound::Unbounded => None,
        };
        let end = match &self.end {
            Bound::Included(k) => Some(successor(k)),
            Bound::Excluded(k) => Some(k.clone()),
            Bound::Unbounded => None,
        };
        (start, end)
    }
}

impl RangeBounds<Vec<u8>> for ScanRange {
    fn start_bound(&self) -> Bound<&Vec<u8>> {
        self.start.as_ref()
    }

    fn end_bound(&self) -> Bound<&Vec<u8>> {
        self.end.as_ref()
    }
}

impl From<std::ops::Range<Vec<u8>>> for ScanRange {
    fn from(r: std::ops::Range<Vec<u8>>) -> Self {
        ScanRange {
            start: Bound::Included(r.start),
            end: Bound::Excluded(r.end),
        }
    }
}

impl From<std::ops::RangeFrom<Vec<u8>>> for ScanRange {
    fn from(r: std::ops::RangeFrom<Vec<u8>>) -> Self {
        ScanRange {
            start: Bound::Included(r.start),
            end: Bound::Unbounded,
        }
    }
}

impl From<std::ops::RangeFull> for ScanRange {
    fn from(_: std::ops::RangeFull) -> Self {
        ScanRange::all()
    }
}

impl From<std::ops::RangeTo<Vec<u8>>> for ScanRange {
    fn from(r: std::ops::RangeTo<Vec<u8>>) -> Self {
        ScanRange {
            start: Bound::Unbounded,
            end: Bound::Excluded(r.end),
        }
    }
}

impl From<std::ops::RangeInclusive<Vec<u8>>> for ScanRange {
    fn from(r: std::ops::RangeInclusive<Vec<u8>>) -> Self {
        let (start, end) = r.into_inner();
        ScanRange {
            start: Bound::Included(start),
            end: Bound::Included(end),
        }
    }
}

impl From<std::ops::RangeToInclusive<Vec<u8>>> for ScanRange {
    fn from(r: std::ops::RangeToInclusive<Vec<u8>>) -> Self {
        ScanRange {
            start: Bound::Unbounded,
            end: Bound::Included(r.end),
        }
    }
}

impl From<(Bound<Vec<u8>>, Bound<Vec<u8>>)> for ScanRange {
    fn from((start, end): (Bound<Vec<u8>>, Bound<Vec<u8>>)) -> Self {
        ScanRange { start, end }
    }
}

/// A consistent read-only view of a store at one point in time.
pub trait KvSnapshot: Send + Sync {
    /// Reads `key` as of this snapshot.
    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>>;

    /// Returns up to `limit` live pairs with keys in `range`, in key
    /// order, as of this snapshot.
    fn scan(&self, range: ScanRange, limit: usize) -> Result<Vec<(Vec<u8>, Vec<u8>)>>;
}

/// The operations every evaluated system supports.
///
/// `scan` corresponds to the paper's range queries (Figure 7b);
/// `put_if_absent` to the RMW benchmark (Figure 9).
pub trait KvStore: Send + Sync {
    /// Applies `batch` — the **single real mutation entry point**.
    ///
    /// Every other mutator (`put`, `delete`, the deprecated
    /// `write_batch`) is a thin shim over this method. Whether a
    /// multi-entry batch applies atomically is a per-system capability:
    /// cLSM batches are atomic (one stamp block, one WAL record);
    /// baselines apply entries one at a time under their own writer
    /// synchronization.
    fn write(&self, batch: WriteBatch, opts: &WriteOptions) -> Result<()>;

    /// Stores `value` under `key` (shim over [`KvStore::write`]).
    fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        self.write(WriteBatch::single_put(key, value), &WriteOptions::new())
    }

    /// Returns the latest value of `key`.
    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>>;

    /// Deletes `key` (shim over [`KvStore::write`]).
    fn delete(&self, key: &[u8]) -> Result<()> {
        self.write(WriteBatch::single_delete(key), &WriteOptions::new())
    }

    /// Applies a batch of puts (`Some`) and deletes (`None`).
    #[deprecated(
        since = "0.6.0",
        note = "build a `WriteBatch` and call `write(batch, &WriteOptions::new())` instead"
    )]
    fn write_batch(&self, batch: &[(Vec<u8>, Option<Vec<u8>>)]) -> Result<()> {
        self.write(WriteBatch::from(batch), &WriteOptions::new())
    }

    /// Creates a consistent read-only view of the store.
    fn snapshot(&self) -> Result<Box<dyn KvSnapshot>>;

    /// Returns up to `limit` live pairs with keys in `range`, in
    /// order, from a consistent view.
    fn scan(&self, range: ScanRange, limit: usize) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        self.snapshot()?.scan(range, limit)
    }

    /// Atomically stores `value` if `key` is absent; returns `true` if
    /// stored.
    ///
    /// Default shim over [`KvStore::read_modify_write`]; systems whose
    /// conditional-put protocol differs from their RMW path (or that
    /// have no atomic RMW at all) override it.
    fn put_if_absent(&self, key: &[u8], value: &[u8]) -> Result<bool> {
        let result = self.read_modify_write(key, &mut |current| match current {
            Some(_) => RmwDecision::Abort,
            None => RmwDecision::Update(value.to_vec()),
        })?;
        Ok(result.committed)
    }

    /// Atomically applies `f` to the current value of `key` (the
    /// paper's Algorithm 3 for cLSM; baselines use whatever writer
    /// synchronization their model prescribes).
    ///
    /// `f` may run several times (once per conflict retry); it must be
    /// a pure function of its input. Systems without an atomic RMW
    /// path (e.g. the HyperLevelDB model, whose pipeline cannot hold a
    /// key stable across read-and-write) return
    /// [`Error::InvalidArgument`] from the default implementation.
    fn read_modify_write(
        &self,
        key: &[u8],
        f: &mut dyn FnMut(Option<&[u8]>) -> RmwDecision,
    ) -> Result<RmwResult> {
        let _ = (key, f);
        Err(Error::invalid_argument(format!(
            "{} does not support atomic read_modify_write",
            self.name()
        )))
    }

    /// Blocks until pending flushes/compactions are done (benchmark
    /// warm-up/teardown hook).
    fn quiesce(&self) -> Result<()>;

    /// Short system name for reports (e.g. `"cLSM"`, `"LevelDB"`).
    fn name(&self) -> &'static str;

    /// The system's metrics, when it maintains a registry. Systems
    /// without one return an empty snapshot.
    fn stats(&self) -> MetricsSnapshot {
        MetricsSnapshot::default()
    }

    /// Per-component metric snapshots for composite systems (e.g. one
    /// per shard of a sharded store), as `(label, snapshot)` pairs.
    /// Monolithic systems return an empty list; [`KvStore::stats`]
    /// remains the aggregate view either way.
    fn shard_stats(&self) -> Vec<(String, MetricsSnapshot)> {
        Vec::new()
    }

    /// Write-amplification counters, when the system tracks them.
    fn write_amp(&self) -> Option<lsm_storage::store::WriteAmp> {
        None
    }
}
