//! The unified mutation types: [`WriteBatch`] + [`WriteOptions`].
//!
//! Every mutation in the workspace — a single put, a delete, or a
//! multi-key atomic batch — is expressed as a [`WriteBatch`] handed to
//! [`KvStore::write`](crate::KvStore::write) together with per-call
//! [`WriteOptions`]. They live in this crate (not `clsm`) so that the
//! trait, the baselines, and the cLSM implementation all share one
//! vocabulary without a dependency cycle.

use crate::{Error, Result};

/// An ordered set of mutations applied as one logical write.
///
/// Entries are `(key, Some(value))` for puts and `(key, None)` for
/// deletes, applied in insertion order; when the same key appears more
/// than once, the last entry wins.
///
/// ```
/// use clsm_kv::WriteBatch;
///
/// let mut batch = WriteBatch::new();
/// batch.put(b"k1", b"v1");
/// batch.delete(b"k2");
/// assert_eq!(batch.len(), 2);
/// let also: WriteBatch = vec![(b"k1".to_vec(), Some(b"v1".to_vec()))]
///     .into_iter()
///     .collect();
/// assert_eq!(also.len(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WriteBatch {
    ops: Vec<(Vec<u8>, Option<Vec<u8>>)>,
}

impl WriteBatch {
    /// Creates an empty batch.
    pub fn new() -> Self {
        WriteBatch::default()
    }

    /// A batch holding one put — the shape `KvStore::put` desugars to.
    pub fn single_put(key: &[u8], value: &[u8]) -> Self {
        WriteBatch {
            ops: vec![(key.to_vec(), Some(value.to_vec()))],
        }
    }

    /// A batch holding one delete.
    pub fn single_delete(key: &[u8]) -> Self {
        WriteBatch {
            ops: vec![(key.to_vec(), None)],
        }
    }

    /// Appends a put of `value` under `key`.
    pub fn put(&mut self, key: impl Into<Vec<u8>>, value: impl Into<Vec<u8>>) -> &mut Self {
        self.ops.push((key.into(), Some(value.into())));
        self
    }

    /// Appends a deletion of `key`.
    pub fn delete(&mut self, key: impl Into<Vec<u8>>) -> &mut Self {
        self.ops.push((key.into(), None));
        self
    }

    /// Number of queued operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the batch holds no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Total payload bytes queued (key + value lengths).
    pub fn size_bytes(&self) -> usize {
        self.ops
            .iter()
            .map(|(k, v)| k.len() + v.as_ref().map_or(0, Vec::len))
            .sum()
    }

    /// Discards all queued operations, keeping the allocation.
    pub fn clear(&mut self) {
        self.ops.clear();
    }

    /// The queued operations in insertion order.
    pub fn ops(&self) -> &[(Vec<u8>, Option<Vec<u8>>)] {
        &self.ops
    }

    /// Consumes the batch, yielding the operations in insertion order.
    pub fn into_ops(self) -> Vec<(Vec<u8>, Option<Vec<u8>>)> {
        self.ops
    }

    /// Iterates over `(key, value)` pairs (`None` value = delete).
    pub fn iter(&self) -> std::slice::Iter<'_, (Vec<u8>, Option<Vec<u8>>)> {
        self.ops.iter()
    }
}

impl FromIterator<(Vec<u8>, Option<Vec<u8>>)> for WriteBatch {
    fn from_iter<I: IntoIterator<Item = (Vec<u8>, Option<Vec<u8>>)>>(iter: I) -> Self {
        WriteBatch {
            ops: iter.into_iter().collect(),
        }
    }
}

impl Extend<(Vec<u8>, Option<Vec<u8>>)> for WriteBatch {
    fn extend<I: IntoIterator<Item = (Vec<u8>, Option<Vec<u8>>)>>(&mut self, iter: I) {
        self.ops.extend(iter);
    }
}

impl IntoIterator for WriteBatch {
    type Item = (Vec<u8>, Option<Vec<u8>>);
    type IntoIter = std::vec::IntoIter<Self::Item>;

    fn into_iter(self) -> Self::IntoIter {
        self.ops.into_iter()
    }
}

impl<'a> IntoIterator for &'a WriteBatch {
    type Item = &'a (Vec<u8>, Option<Vec<u8>>);
    type IntoIter = std::slice::Iter<'a, (Vec<u8>, Option<Vec<u8>>)>;

    fn into_iter(self) -> Self::IntoIter {
        self.ops.iter()
    }
}

impl From<&[(Vec<u8>, Option<Vec<u8>>)]> for WriteBatch {
    fn from(ops: &[(Vec<u8>, Option<Vec<u8>>)]) -> Self {
        WriteBatch { ops: ops.to_vec() }
    }
}

/// Per-call durability knobs for [`KvStore::write`](crate::KvStore::write).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WriteOptions {
    /// Wait until the write is fsync'd before returning (group-committed
    /// with concurrent syncing writers). Defaults to `false`; a store
    /// opened in always-sync mode syncs regardless.
    pub sync: bool,
    /// Skip the write-ahead log entirely: the write is lost on a crash
    /// until the memtable flushes. Incompatible with `sync`.
    pub disable_wal: bool,
}

impl WriteOptions {
    /// The default options (asynchronous, logged).
    pub fn new() -> Self {
        WriteOptions::default()
    }

    /// Options requesting a durable (fsync'd) write.
    pub fn durable() -> Self {
        WriteOptions {
            sync: true,
            disable_wal: false,
        }
    }

    /// Rejects contradictory combinations (`sync` + `disable_wal`).
    pub fn validate(&self) -> Result<()> {
        if self.sync && self.disable_wal {
            return Err(Error::invalid_argument(
                "WriteOptions: sync requires the WAL (disable_wal must be false)",
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_builder_accumulates() {
        let mut b = WriteBatch::new();
        assert!(b.is_empty());
        b.put(b"a".to_vec(), b"1".to_vec()).delete(b"b".to_vec());
        assert_eq!(b.len(), 2);
        assert_eq!(b.size_bytes(), 3);
        assert_eq!(b.ops()[0], (b"a".to_vec(), Some(b"1".to_vec())));
        assert_eq!(b.ops()[1], (b"b".to_vec(), None));
        b.clear();
        assert!(b.is_empty());
    }

    #[test]
    fn batch_from_iterator_and_back() {
        let entries = vec![(b"x".to_vec(), Some(b"1".to_vec())), (b"y".to_vec(), None)];
        let batch: WriteBatch = entries.clone().into_iter().collect();
        assert_eq!(batch.iter().count(), 2);
        assert_eq!((&batch).into_iter().count(), 2);
        assert_eq!(batch.clone().into_ops(), entries);
        let roundtrip: Vec<_> = batch.into_iter().collect();
        assert_eq!(roundtrip, entries);
    }

    #[test]
    fn batch_extend_and_from_slice() {
        let mut batch = WriteBatch::new();
        batch.extend(vec![(b"k".to_vec(), Some(b"v".to_vec()))]);
        assert_eq!(batch.len(), 1);
        let from_slice: WriteBatch = batch.ops().into();
        assert_eq!(from_slice, batch);
    }

    #[test]
    fn single_op_constructors() {
        let p = WriteBatch::single_put(b"k", b"v");
        assert_eq!(p.ops(), &[(b"k".to_vec(), Some(b"v".to_vec()))]);
        let d = WriteBatch::single_delete(b"k");
        assert_eq!(d.ops(), &[(b"k".to_vec(), None)]);
    }

    #[test]
    fn write_options_validation() {
        assert!(WriteOptions::new().validate().is_ok());
        assert!(WriteOptions::durable().validate().is_ok());
        assert!(WriteOptions {
            sync: false,
            disable_wal: true
        }
        .validate()
        .is_ok());
        assert!(WriteOptions {
            sync: true,
            disable_wal: true
        }
        .validate()
        .is_err());
    }
}
