//! History recording around [`KvStore`] trait objects.
//!
//! The correctness checker (`clsm-check`) validates real concurrent
//! executions, so every operation must be captured as an
//! *invoke/response interval* on a shared logical clock, with the
//! arguments the caller passed and the results the store returned.
//! This module provides that capture layer, black-box: it wraps any
//! `Arc<dyn KvStore>` — cLSM's `Db`, `ShardedDb`, and every baseline —
//! without touching the store's own hot paths.
//!
//! Recording is arranged so it cannot perturb the schedules it
//! observes:
//!
//! - each worker thread records through its own [`Recorder`] (a
//!   [`clsm_util::eventlog::EventLogHandle`] underneath), so event
//!   appends are plain `Vec` pushes with no shared state;
//! - the only shared touch per operation is two `fetch_add` ticks on
//!   the session clock, taken immediately before and after the inner
//!   call.
//!
//! The resulting [`KvEvent`] stream is the input of the checkers: if
//! event A's `response` tick is below event B's `invoke` tick, A
//! really completed before B began.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use clsm_util::error::Result;
use clsm_util::eventlog::{EventLog, EventLogHandle};

use crate::{KvSnapshot, KvStore, RmwDecision, RmwResult, ScanRange, WriteBatch, WriteOptions};

/// The decision a committed (or aborted) RMW actually applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RmwApplied {
    /// A new value was stored.
    Update(Vec<u8>),
    /// A deletion marker was stored.
    Delete,
    /// The operation observed its input and wrote nothing.
    Abort,
}

/// One recorded operation, with everything the checkers need.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvOp {
    /// `put(key, value)`.
    Put {
        /// Key written.
        key: Vec<u8>,
        /// Value written.
        value: Vec<u8>,
    },
    /// `delete(key)`.
    Delete {
        /// Key deleted.
        key: Vec<u8>,
    },
    /// `get(key)` and what it observed.
    Get {
        /// Key read.
        key: Vec<u8>,
        /// Observed value (`None` = absent or deleted).
        result: Option<Vec<u8>>,
    },
    /// `put_if_absent(key, value)` and whether it stored.
    PutIfAbsent {
        /// Key written.
        key: Vec<u8>,
        /// Value offered.
        value: Vec<u8>,
        /// Whether the store reported the value as stored.
        stored: bool,
    },
    /// `read_modify_write(key, f)`: the observed previous value and
    /// the decision that was applied on the final attempt.
    Rmw {
        /// Key operated on.
        key: Vec<u8>,
        /// Value the applied attempt observed.
        prev: Option<Vec<u8>>,
        /// What the final attempt did.
        applied: RmwApplied,
    },
    /// `write_batch(entries)`. Entries with `None` are deletes. The
    /// batch id ties multi-key atomicity observations together.
    WriteBatch {
        /// Session-unique batch identifier.
        batch: u64,
        /// The batch body, in submission order.
        entries: Vec<(Vec<u8>, Option<Vec<u8>>)>,
    },
    /// `snapshot()`: the interval during which the read point was
    /// chosen.
    SnapshotCreate {
        /// Session-unique snapshot identifier.
        snap: u64,
    },
    /// A `get` through a snapshot.
    SnapshotGet {
        /// The snapshot read through.
        snap: u64,
        /// Key read.
        key: Vec<u8>,
        /// Observed value.
        result: Option<Vec<u8>>,
    },
    /// A `scan` — through an explicit snapshot if one was created, or
    /// a store-level scan (in which case `snap` is a fresh id with no
    /// matching [`KvOp::SnapshotCreate`] event, and the scan's own
    /// interval brackets the read-point choice).
    Scan {
        /// Owning snapshot id.
        snap: u64,
        /// Range scanned.
        range: ScanRange,
        /// Limit passed.
        limit: usize,
        /// Observed pairs, in key order.
        result: Vec<(Vec<u8>, Vec<u8>)>,
    },
}

impl KvOp {
    /// The key this operation addresses, when it addresses exactly one.
    pub fn key(&self) -> Option<&[u8]> {
        match self {
            KvOp::Put { key, .. }
            | KvOp::Delete { key }
            | KvOp::Get { key, .. }
            | KvOp::PutIfAbsent { key, .. }
            | KvOp::Rmw { key, .. }
            | KvOp::SnapshotGet { key, .. } => Some(key),
            KvOp::WriteBatch { .. } | KvOp::SnapshotCreate { .. } | KvOp::Scan { .. } => None,
        }
    }
}

/// One operation instance: interval, recording thread, outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KvEvent {
    /// Recorder id (one per [`Recorder`], i.e. per worker thread).
    pub thread: u32,
    /// Clock tick taken immediately before the call entered the store.
    pub invoke: u64,
    /// Clock tick taken immediately after the call returned.
    pub response: u64,
    /// `false` when the store returned an error; the payload then
    /// carries the arguments with default results.
    pub ok: bool,
    /// The operation and its observations.
    pub op: KvOp,
}

/// A recording session over one store under test.
///
/// Create one per checked execution, hand each worker thread a
/// [`Recorder`] via [`RecordingSession::recorder`], run the workload,
/// drop the recorders, then collect the history with
/// [`RecordingSession::take_events`].
pub struct RecordingSession {
    store: Arc<dyn KvStore>,
    log: Arc<EventLog<KvEvent>>,
    snap_ids: AtomicU64,
    batch_ids: AtomicU64,
    recorder_ids: AtomicU64,
}

impl RecordingSession {
    /// Wraps `store` for recording.
    pub fn new(store: Arc<dyn KvStore>) -> Arc<RecordingSession> {
        Arc::new(RecordingSession {
            store,
            log: Arc::new(EventLog::new()),
            snap_ids: AtomicU64::new(0),
            batch_ids: AtomicU64::new(0),
            recorder_ids: AtomicU64::new(0),
        })
    }

    /// The store under test.
    pub fn store(&self) -> &Arc<dyn KvStore> {
        &self.store
    }

    /// Creates a per-thread recorder.
    pub fn recorder(self: &Arc<Self>) -> Recorder {
        Recorder {
            thread: self.recorder_ids.fetch_add(1, Ordering::Relaxed) as u32,
            handle: self.log.handle(),
            session: Arc::clone(self),
        }
    }

    /// The current clock value — e.g. the instant a simulated crash
    /// happened, for checking recovery against the durable prefix.
    pub fn now(&self) -> u64 {
        self.log.now()
    }

    /// Drains every flushed event, sorted by invoke tick. Call after
    /// all [`Recorder`]s are dropped.
    pub fn take_events(&self) -> Vec<KvEvent> {
        let mut events = self.log.drain();
        events.sort_by_key(|e| e.invoke);
        events
    }
}

impl std::fmt::Debug for RecordingSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecordingSession")
            .field("store", &self.store.name())
            .field("clock", &self.log.now())
            .finish()
    }
}

/// A snapshot handle whose reads are recorded against its creation
/// interval. Obtained from [`Recorder::snapshot`]; reads go through
/// [`Recorder::snapshot_get`] / [`Recorder::snapshot_scan`].
pub struct RecordedSnapshot {
    snap: Box<dyn KvSnapshot>,
    id: u64,
}

impl RecordedSnapshot {
    /// The session-unique snapshot id.
    pub fn id(&self) -> u64 {
        self.id
    }
}

/// Per-thread recording facade over the session's store.
///
/// Intentionally `!Sync`: each worker owns one. Every method takes an
/// invoke tick, calls the store, takes a response tick, and buffers
/// the event locally.
pub struct Recorder {
    session: Arc<RecordingSession>,
    thread: u32,
    handle: EventLogHandle<KvEvent>,
}

impl Recorder {
    fn record(&mut self, invoke: u64, ok: bool, op: KvOp) {
        let response = self.handle.tick();
        self.handle.push(KvEvent {
            thread: self.thread,
            invoke,
            response,
            ok,
            op,
        });
    }

    /// Recorded `put`.
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        let invoke = self.handle.tick();
        let r = self.session.store.put(key, value);
        self.record(
            invoke,
            r.is_ok(),
            KvOp::Put {
                key: key.to_vec(),
                value: value.to_vec(),
            },
        );
        r
    }

    /// Recorded `delete`.
    pub fn delete(&mut self, key: &[u8]) -> Result<()> {
        let invoke = self.handle.tick();
        let r = self.session.store.delete(key);
        self.record(invoke, r.is_ok(), KvOp::Delete { key: key.to_vec() });
        r
    }

    /// Recorded `get`.
    pub fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let invoke = self.handle.tick();
        let r = self.session.store.get(key);
        self.record(
            invoke,
            r.is_ok(),
            KvOp::Get {
                key: key.to_vec(),
                result: r.as_ref().ok().cloned().flatten(),
            },
        );
        r
    }

    /// Recorded `put_if_absent`.
    pub fn put_if_absent(&mut self, key: &[u8], value: &[u8]) -> Result<bool> {
        let invoke = self.handle.tick();
        let r = self.session.store.put_if_absent(key, value);
        self.record(
            invoke,
            r.is_ok(),
            KvOp::PutIfAbsent {
                key: key.to_vec(),
                value: value.to_vec(),
                stored: *r.as_ref().unwrap_or(&false),
            },
        );
        r
    }

    /// Recorded `read_modify_write`. The decision returned by `f` on
    /// the applied attempt is captured into the event.
    pub fn read_modify_write(
        &mut self,
        key: &[u8],
        f: &mut dyn FnMut(Option<&[u8]>) -> RmwDecision,
    ) -> Result<RmwResult> {
        let invoke = self.handle.tick();
        let mut last: Option<RmwDecision> = None;
        let r = self.session.store.read_modify_write(key, &mut |cur| {
            let d = f(cur);
            last = Some(d.clone());
            d
        });
        let applied = match (&r, last) {
            (Ok(res), Some(RmwDecision::Update(v))) if res.committed => RmwApplied::Update(v),
            (Ok(res), Some(RmwDecision::Delete)) if res.committed => RmwApplied::Delete,
            _ => RmwApplied::Abort,
        };
        self.record(
            invoke,
            r.is_ok(),
            KvOp::Rmw {
                key: key.to_vec(),
                prev: r.as_ref().ok().and_then(|res| res.previous.clone()),
                applied,
            },
        );
        r
    }

    /// Recorded `write` (the unified batch entry point). Returns the
    /// session-unique batch id the event was tagged with.
    pub fn write(&mut self, batch: WriteBatch, opts: &WriteOptions) -> Result<u64> {
        let id = self.session.batch_ids.fetch_add(1, Ordering::Relaxed);
        let entries = batch.ops().to_vec();
        let invoke = self.handle.tick();
        let r = self.session.store.write(batch, opts);
        self.record(invoke, r.is_ok(), KvOp::WriteBatch { batch: id, entries });
        r.map(|()| id)
    }

    /// Recorded `write_batch`. Returns the session-unique batch id the
    /// event was tagged with.
    #[deprecated(
        since = "0.6.0",
        note = "build a `WriteBatch` and call `write(batch, &WriteOptions::new())` instead"
    )]
    pub fn write_batch(&mut self, entries: &[(Vec<u8>, Option<Vec<u8>>)]) -> Result<u64> {
        self.write(WriteBatch::from(entries), &WriteOptions::new())
    }

    /// Recorded store-level `scan` (implicit snapshot: the scan's own
    /// interval brackets the read-point choice).
    pub fn scan(&mut self, range: ScanRange, limit: usize) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let snap = self.session.snap_ids.fetch_add(1, Ordering::Relaxed);
        let invoke = self.handle.tick();
        let r = self.session.store.scan(range.clone(), limit);
        self.record(
            invoke,
            r.is_ok(),
            KvOp::Scan {
                snap,
                range,
                limit,
                result: r.as_ref().ok().cloned().unwrap_or_default(),
            },
        );
        r
    }

    /// Recorded `snapshot`.
    pub fn snapshot(&mut self) -> Result<RecordedSnapshot> {
        let id = self.session.snap_ids.fetch_add(1, Ordering::Relaxed);
        let invoke = self.handle.tick();
        let r = self.session.store.snapshot();
        self.record(invoke, r.is_ok(), KvOp::SnapshotCreate { snap: id });
        r.map(|snap| RecordedSnapshot { snap, id })
    }

    /// Recorded `get` through a snapshot.
    pub fn snapshot_get(&mut self, snap: &RecordedSnapshot, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let invoke = self.handle.tick();
        let r = snap.snap.get(key);
        self.record(
            invoke,
            r.is_ok(),
            KvOp::SnapshotGet {
                snap: snap.id,
                key: key.to_vec(),
                result: r.as_ref().ok().cloned().flatten(),
            },
        );
        r
    }

    /// Recorded `scan` through a snapshot.
    pub fn snapshot_scan(
        &mut self,
        snap: &RecordedSnapshot,
        range: ScanRange,
        limit: usize,
    ) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let invoke = self.handle.tick();
        let r = snap.snap.scan(range.clone(), limit);
        self.record(
            invoke,
            r.is_ok(),
            KvOp::Scan {
                snap: snap.id,
                range,
                limit,
                result: r.as_ref().ok().cloned().unwrap_or_default(),
            },
        );
        r
    }

    /// Flushes buffered events into the session early (they otherwise
    /// flush when the recorder drops).
    pub fn flush(&mut self) {
        self.handle.flush();
    }
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("thread", &self.thread)
            .field("buffered", &self.handle.buffered())
            .finish()
    }
}
