//! Request-oriented façade over [`KvStore`].
//!
//! Every driver that exercises a store through a uniform surface — the
//! network server, the linearizability checker, the bench harness —
//! speaks in terms of one [`Request`] in, one [`Response`] out, routed
//! through [`dispatch`]. The wire protocol in `clsm-net` is then a
//! *serialization* of these enums rather than a parallel API that
//! could drift from the trait.
//!
//! Two store operations cannot be represented as plain data and are
//! deliberately absent:
//!
//! - `read_modify_write` takes a closure; closures do not cross a
//!   process boundary. Remote callers get [`Request::PutIfAbsent`]
//!   (the paper's RMW benchmark shape) as a first-class request
//!   instead.
//! - `quiesce` is a harness hook, not a client operation.
//!
//! Snapshots are stateful: a snapshot handle lives on the serving side
//! and is named by a `u64` id. [`SnapshotSessions`] owns that table —
//! one per connection on the server, so ids never leak across
//! connections and dropping a connection releases its snapshots.

use std::collections::HashMap;

use clsm_util::error::Error;

use crate::{KvSnapshot, KvStore, ScanRange, WriteBatch, WriteOptions};

/// One client-issued operation, as plain data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Read the latest value of a key.
    Get {
        /// Key to read.
        key: Vec<u8>,
    },
    /// Store a value under a key.
    Put {
        /// Key to write.
        key: Vec<u8>,
        /// Value to store.
        value: Vec<u8>,
        /// Durability options for this write.
        opts: WriteOptions,
    },
    /// Delete a key.
    Delete {
        /// Key to delete.
        key: Vec<u8>,
        /// Durability options for this write.
        opts: WriteOptions,
    },
    /// Apply a multi-entry batch through the group-commit path.
    Write {
        /// Puts (`Some`) and deletes (`None`) to apply.
        batch: WriteBatch,
        /// Durability options for this write.
        opts: WriteOptions,
    },
    /// Atomically store a value if the key is absent.
    PutIfAbsent {
        /// Key to conditionally write.
        key: Vec<u8>,
        /// Value to store when absent.
        value: Vec<u8>,
    },
    /// Range scan from a fresh consistent view.
    Scan {
        /// Key range to scan.
        range: ScanRange,
        /// Maximum number of pairs to return.
        limit: u32,
    },
    /// Create a snapshot; the response carries its id.
    SnapshotCreate,
    /// Read a key as of a previously created snapshot.
    SnapshotGet {
        /// Snapshot id from [`Response::SnapshotId`].
        snapshot: u64,
        /// Key to read.
        key: Vec<u8>,
    },
    /// Range scan as of a previously created snapshot.
    SnapshotScan {
        /// Snapshot id from [`Response::SnapshotId`].
        snapshot: u64,
        /// Key range to scan.
        range: ScanRange,
        /// Maximum number of pairs to return.
        limit: u32,
    },
    /// Drop a snapshot, releasing the resources it pins.
    SnapshotRelease {
        /// Snapshot id to release.
        snapshot: u64,
    },
    /// Fetch the store's metrics in text exposition format.
    Stats,
}

impl Request {
    /// Stable lower-case name, used for per-opcode metrics and logs.
    pub fn name(&self) -> &'static str {
        match self {
            Request::Get { .. } => "get",
            Request::Put { .. } => "put",
            Request::Delete { .. } => "delete",
            Request::Write { .. } => "write",
            Request::PutIfAbsent { .. } => "put_if_absent",
            Request::Scan { .. } => "scan",
            Request::SnapshotCreate => "snapshot_create",
            Request::SnapshotGet { .. } => "snapshot_get",
            Request::SnapshotScan { .. } => "snapshot_scan",
            Request::SnapshotRelease { .. } => "snapshot_release",
            Request::Stats => "stats",
        }
    }

    /// Whether this request mutates the store (and so is eligible for
    /// cross-connection write coalescing on the server).
    pub fn is_write(&self) -> bool {
        matches!(
            self,
            Request::Put { .. } | Request::Delete { .. } | Request::Write { .. }
        )
    }
}

/// The result of one [`Request`], as plain data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Mutation applied ([`Request::Put`]/[`Request::Delete`]/
    /// [`Request::Write`]/[`Request::SnapshotRelease`]).
    Done,
    /// A point read's result (`None` = key absent).
    Value(Option<Vec<u8>>),
    /// Whether a [`Request::PutIfAbsent`] stored its value.
    Applied(bool),
    /// Key-ordered live pairs from a scan.
    Entries(Vec<(Vec<u8>, Vec<u8>)>),
    /// Id of a freshly created snapshot.
    SnapshotId(u64),
    /// Metrics in text exposition format.
    Stats(String),
    /// The operation failed; see [`WireError`].
    Error(WireError),
}

/// An [`Error`] flattened to what survives a process boundary: the
/// stable kind code, the display message, and the retryability verdict
/// (computed where the full error — e.g. the `io::ErrorKind` — still
/// exists).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Stable code from [`clsm_util::error::ErrorKind::code`].
    pub code: u16,
    /// Human-readable message (the error's `Display` output).
    pub message: String,
    /// Verdict of [`Error::is_retryable`] at the point of failure.
    pub retryable: bool,
}

impl WireError {
    /// Flattens an error for transport.
    pub fn from_error(e: &Error) -> Self {
        WireError {
            code: e.kind().code(),
            message: e.to_string(),
            retryable: e.is_retryable(),
        }
    }

    /// Reconstitutes a typed [`Error`] on the receiving side.
    pub fn into_error(self) -> Error {
        Error::from_wire(self.code, self.message, self.retryable)
    }
}

impl From<&Error> for WireError {
    fn from(e: &Error) -> Self {
        WireError::from_error(e)
    }
}

/// Per-connection table of live snapshots, keyed by id.
///
/// Ids are allocated densely starting at 1; 0 is never a valid id, so
/// a zeroed wire field can never alias a live snapshot.
#[derive(Default)]
pub struct SnapshotSessions {
    next: u64,
    live: HashMap<u64, Box<dyn KvSnapshot>>,
}

impl std::fmt::Debug for SnapshotSessions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotSessions")
            .field("live", &self.live.len())
            .finish()
    }
}

impl SnapshotSessions {
    /// An empty table.
    pub fn new() -> Self {
        SnapshotSessions::default()
    }

    /// Number of snapshots currently held.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// Whether no snapshots are held.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    fn insert(&mut self, snap: Box<dyn KvSnapshot>) -> u64 {
        self.next += 1;
        self.live.insert(self.next, snap);
        self.next
    }

    fn get(&self, id: u64) -> Option<&dyn KvSnapshot> {
        self.live.get(&id).map(|b| b.as_ref())
    }

    fn release(&mut self, id: u64) -> bool {
        self.live.remove(&id).is_some()
    }
}

fn unknown_snapshot(id: u64) -> Response {
    Response::Error(WireError::from_error(&Error::invalid_argument(format!(
        "unknown snapshot id {id}"
    ))))
}

/// Executes one [`Request`] against a store, producing its
/// [`Response`]. Never panics and never returns `Err` — failures are
/// data ([`Response::Error`]), because on the serving side an error
/// belongs to one request, not to the connection.
pub fn dispatch(store: &dyn KvStore, sessions: &mut SnapshotSessions, req: Request) -> Response {
    fn ok_or_err<T>(r: crate::Result<T>, f: impl FnOnce(T) -> Response) -> Response {
        match r {
            Ok(v) => f(v),
            Err(e) => Response::Error(WireError::from_error(&e)),
        }
    }

    match req {
        Request::Get { key } => ok_or_err(store.get(&key), Response::Value),
        Request::Put { key, value, opts } => ok_or_err(
            store.write(WriteBatch::single_put(&key, &value), &opts),
            |()| Response::Done,
        ),
        Request::Delete { key, opts } => {
            ok_or_err(store.write(WriteBatch::single_delete(&key), &opts), |()| {
                Response::Done
            })
        }
        Request::Write { batch, opts } => ok_or_err(store.write(batch, &opts), |()| Response::Done),
        Request::PutIfAbsent { key, value } => {
            ok_or_err(store.put_if_absent(&key, &value), Response::Applied)
        }
        Request::Scan { range, limit } => {
            ok_or_err(store.scan(range, limit as usize), Response::Entries)
        }
        Request::SnapshotCreate => ok_or_err(store.snapshot(), |snap| {
            Response::SnapshotId(sessions.insert(snap))
        }),
        Request::SnapshotGet { snapshot, key } => match sessions.get(snapshot) {
            Some(snap) => ok_or_err(snap.get(&key), Response::Value),
            None => unknown_snapshot(snapshot),
        },
        Request::SnapshotScan {
            snapshot,
            range,
            limit,
        } => match sessions.get(snapshot) {
            Some(snap) => ok_or_err(snap.scan(range, limit as usize), Response::Entries),
            None => unknown_snapshot(snapshot),
        },
        Request::SnapshotRelease { snapshot } => {
            if sessions.release(snapshot) {
                Response::Done
            } else {
                unknown_snapshot(snapshot)
            }
        }
        Request::Stats => Response::Stats(store.stats().to_text()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Result;
    use std::collections::BTreeMap;
    use std::ops::Bound;
    use std::sync::Mutex;

    /// Minimal in-memory store: a mutexed BTreeMap whose snapshots are
    /// full clones. Good enough to exercise every dispatch arm.
    #[derive(Default)]
    struct MemStore {
        map: Mutex<BTreeMap<Vec<u8>, Vec<u8>>>,
    }

    struct MemSnapshot(BTreeMap<Vec<u8>, Vec<u8>>);

    fn scan_map(
        map: &BTreeMap<Vec<u8>, Vec<u8>>,
        range: ScanRange,
        limit: usize,
    ) -> Vec<(Vec<u8>, Vec<u8>)> {
        map.range::<Vec<u8>, (Bound<&Vec<u8>>, Bound<&Vec<u8>>)>((
            range.start.as_ref(),
            range.end.as_ref(),
        ))
        .take(limit)
        .map(|(k, v)| (k.clone(), v.clone()))
        .collect()
    }

    impl KvSnapshot for MemSnapshot {
        fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
            Ok(self.0.get(key).cloned())
        }

        fn scan(&self, range: ScanRange, limit: usize) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
            Ok(scan_map(&self.0, range, limit))
        }
    }

    impl KvStore for MemStore {
        fn write(&self, batch: WriteBatch, _opts: &WriteOptions) -> Result<()> {
            let mut map = self.map.lock().unwrap();
            for (k, v) in batch.into_ops() {
                match v {
                    Some(v) => {
                        map.insert(k, v);
                    }
                    None => {
                        map.remove(&k);
                    }
                }
            }
            Ok(())
        }

        fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
            Ok(self.map.lock().unwrap().get(key).cloned())
        }

        fn snapshot(&self) -> Result<Box<dyn KvSnapshot>> {
            Ok(Box::new(MemSnapshot(self.map.lock().unwrap().clone())))
        }

        fn put_if_absent(&self, key: &[u8], value: &[u8]) -> Result<bool> {
            let mut map = self.map.lock().unwrap();
            if map.contains_key(key) {
                Ok(false)
            } else {
                map.insert(key.to_vec(), value.to_vec());
                Ok(true)
            }
        }

        fn quiesce(&self) -> Result<()> {
            Ok(())
        }

        fn name(&self) -> &'static str {
            "mem"
        }
    }

    fn d(store: &MemStore, sessions: &mut SnapshotSessions, req: Request) -> Response {
        dispatch(store, sessions, req)
    }

    #[test]
    fn point_ops_round_trip() {
        let store = MemStore::default();
        let mut s = SnapshotSessions::new();
        let opts = WriteOptions::new();
        assert_eq!(
            d(
                &store,
                &mut s,
                Request::Put {
                    key: b"a".to_vec(),
                    value: b"1".to_vec(),
                    opts,
                }
            ),
            Response::Done
        );
        assert_eq!(
            d(&store, &mut s, Request::Get { key: b"a".to_vec() }),
            Response::Value(Some(b"1".to_vec()))
        );
        assert_eq!(
            d(
                &store,
                &mut s,
                Request::Delete {
                    key: b"a".to_vec(),
                    opts,
                }
            ),
            Response::Done
        );
        assert_eq!(
            d(&store, &mut s, Request::Get { key: b"a".to_vec() }),
            Response::Value(None)
        );
    }

    #[test]
    fn batch_scan_and_conditional_put() {
        let store = MemStore::default();
        let mut s = SnapshotSessions::new();
        let mut batch = WriteBatch::new();
        batch.put(b"a", b"1");
        batch.put(b"b", b"2");
        batch.put(b"c", b"3");
        batch.delete(b"b");
        assert_eq!(
            d(
                &store,
                &mut s,
                Request::Write {
                    batch,
                    opts: WriteOptions::new(),
                }
            ),
            Response::Done
        );
        assert_eq!(
            d(
                &store,
                &mut s,
                Request::Scan {
                    range: ScanRange::all(),
                    limit: 10,
                }
            ),
            Response::Entries(vec![
                (b"a".to_vec(), b"1".to_vec()),
                (b"c".to_vec(), b"3".to_vec()),
            ])
        );
        assert_eq!(
            d(
                &store,
                &mut s,
                Request::PutIfAbsent {
                    key: b"a".to_vec(),
                    value: b"x".to_vec(),
                }
            ),
            Response::Applied(false)
        );
        assert_eq!(
            d(
                &store,
                &mut s,
                Request::PutIfAbsent {
                    key: b"d".to_vec(),
                    value: b"4".to_vec(),
                }
            ),
            Response::Applied(true)
        );
    }

    #[test]
    fn snapshot_sessions_isolate_and_release() {
        let store = MemStore::default();
        let mut s = SnapshotSessions::new();
        store.put(b"k", b"old").unwrap();
        let id = match d(&store, &mut s, Request::SnapshotCreate) {
            Response::SnapshotId(id) => id,
            other => panic!("expected SnapshotId, got {other:?}"),
        };
        assert_ne!(id, 0, "0 must never be a live snapshot id");
        store.put(b"k", b"new").unwrap();
        // The snapshot still sees the old value; a live read sees the new.
        assert_eq!(
            d(
                &store,
                &mut s,
                Request::SnapshotGet {
                    snapshot: id,
                    key: b"k".to_vec(),
                }
            ),
            Response::Value(Some(b"old".to_vec()))
        );
        assert_eq!(
            d(&store, &mut s, Request::Get { key: b"k".to_vec() }),
            Response::Value(Some(b"new".to_vec()))
        );
        assert_eq!(
            d(
                &store,
                &mut s,
                Request::SnapshotScan {
                    snapshot: id,
                    range: ScanRange::all(),
                    limit: 10,
                }
            ),
            Response::Entries(vec![(b"k".to_vec(), b"old".to_vec())])
        );
        assert_eq!(
            d(&store, &mut s, Request::SnapshotRelease { snapshot: id }),
            Response::Done
        );
        assert!(s.is_empty());
        // Released (and never-issued) ids fail with a typed error, not
        // a panic.
        for bogus in [id, 0, 999] {
            match d(
                &store,
                &mut s,
                Request::SnapshotGet {
                    snapshot: bogus,
                    key: b"k".to_vec(),
                },
            ) {
                Response::Error(e) => {
                    assert!(e.message.contains("unknown snapshot"), "{e:?}");
                    assert!(!e.retryable);
                }
                other => panic!("expected Error, got {other:?}"),
            }
        }
    }

    #[test]
    fn errors_cross_as_structured_codes() {
        use clsm_util::error::ErrorKind;
        let err = Error::invalid_argument("bad limit");
        let wire = WireError::from_error(&err);
        assert_eq!(wire.code, ErrorKind::InvalidArgument.code());
        let back = wire.into_error();
        assert_eq!(back.kind(), ErrorKind::InvalidArgument);
        assert!(!back.is_retryable());
        assert!(back.to_string().contains("bad limit"));
    }

    #[test]
    fn request_names_are_stable() {
        // The wire protocol and per-opcode metrics key off these names;
        // renaming one is a compatibility break this test makes loud.
        let opts = WriteOptions::new;
        let cases: Vec<(Request, &str)> = vec![
            (Request::Get { key: vec![] }, "get"),
            (
                Request::Put {
                    key: vec![],
                    value: vec![],
                    opts: opts(),
                },
                "put",
            ),
            (
                Request::Delete {
                    key: vec![],
                    opts: opts(),
                },
                "delete",
            ),
            (
                Request::Write {
                    batch: WriteBatch::new(),
                    opts: opts(),
                },
                "write",
            ),
            (
                Request::PutIfAbsent {
                    key: vec![],
                    value: vec![],
                },
                "put_if_absent",
            ),
            (
                Request::Scan {
                    range: ScanRange::all(),
                    limit: 1,
                },
                "scan",
            ),
            (Request::SnapshotCreate, "snapshot_create"),
            (
                Request::SnapshotGet {
                    snapshot: 1,
                    key: vec![],
                },
                "snapshot_get",
            ),
            (
                Request::SnapshotScan {
                    snapshot: 1,
                    range: ScanRange::all(),
                    limit: 1,
                },
                "snapshot_scan",
            ),
            (Request::SnapshotRelease { snapshot: 1 }, "snapshot_release"),
            (Request::Stats, "stats"),
        ];
        for (req, want) in &cases {
            assert_eq!(req.name(), *want);
            assert_eq!(
                req.is_write(),
                matches!(*want, "put" | "delete" | "write"),
                "{want}"
            );
        }
    }
}
