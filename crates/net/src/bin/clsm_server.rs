//! `clsm-server`: serves a cLSM store over the pipelined binary
//! protocol until a client sends the shutdown opcode.
//!
//! ```text
//! clsm-server --data DIR [--addr HOST:PORT] [--workers N]
//!             [--max-connections N] [--max-frame-bytes N]
//!             [--sync] [--small]
//! ```
//!
//! Prints `clsm-server listening on <addr>` once ready (scripts wait
//! for this line) and exits 0 after a clean shutdown.

use std::process::ExitCode;
use std::sync::Arc;

use clsm::{Db, Options};
use clsm_kv::KvStore;
use clsm_net::{server, NetOptions};

fn usage() -> ! {
    eprintln!(
        "usage: clsm-server --data DIR [--addr HOST:PORT] [--workers N]\n\
         \x20                [--max-connections N] [--max-frame-bytes N] [--sync] [--small]\n\
         \n\
         Serves a cLSM store at DIR over the clsm-net binary protocol.\n\
         Port 0 picks a free port; the bound address is printed on startup.\n\
         Shut down cleanly with: clsm-doctor --connect ADDR --shutdown"
    );
    std::process::exit(2);
}

fn parse_flag<T: std::str::FromStr>(args: &mut std::env::Args, flag: &str) -> T {
    let v = args.next().unwrap_or_else(|| {
        eprintln!("clsm-server: {flag} needs a value");
        usage();
    });
    v.parse().unwrap_or_else(|_| {
        eprintln!("clsm-server: bad value for {flag}: {v}");
        usage();
    })
}

fn main() -> ExitCode {
    let mut data: Option<std::path::PathBuf> = None;
    let mut builder = NetOptions::builder().addr("127.0.0.1:7878");
    let mut sync = false;
    let mut small = false;

    let mut args = std::env::args();
    let _argv0 = args.next();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--data" => {
                data = Some(std::path::PathBuf::from(parse_flag::<String>(
                    &mut args, "--data",
                )))
            }
            "--addr" => builder = builder.addr(parse_flag::<String>(&mut args, "--addr")),
            "--workers" => builder = builder.workers(parse_flag(&mut args, "--workers")),
            "--max-connections" => {
                builder = builder.max_connections(parse_flag(&mut args, "--max-connections"))
            }
            "--max-frame-bytes" => {
                builder = builder.max_frame_bytes(parse_flag(&mut args, "--max-frame-bytes"))
            }
            "--sync" => sync = true,
            "--small" => small = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("clsm-server: unknown flag {other}");
                usage();
            }
        }
    }
    let Some(data) = data else {
        eprintln!("clsm-server: --data DIR is required");
        usage();
    };
    let opts = match builder.build() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("clsm-server: {e}");
            return ExitCode::from(2);
        }
    };

    let mut db_opts = if small {
        Options::small_for_tests()
    } else {
        Options::default()
    };
    db_opts.sync_writes = sync;
    if let Err(e) = std::fs::create_dir_all(&data) {
        eprintln!("clsm-server: cannot create {}: {e}", data.display());
        return ExitCode::FAILURE;
    }
    let store: Arc<dyn KvStore> = match Db::open(&data, db_opts) {
        Ok(db) => Arc::new(db),
        Err(e) => {
            eprintln!("clsm-server: cannot open store at {}: {e}", data.display());
            return ExitCode::FAILURE;
        }
    };

    let handle = match server::serve(store, &opts) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("clsm-server: cannot serve on {}: {e}", opts.addr);
            return ExitCode::FAILURE;
        }
    };
    println!("clsm-server listening on {}", handle.addr());
    // Scripts parse the line above; make sure it is not stuck in a pipe
    // buffer while we block in wait().
    use std::io::Write;
    let _ = std::io::stdout().flush();

    handle.wait();
    println!("clsm-server shut down cleanly");
    ExitCode::SUCCESS
}
