//! `clsm-load`: open-loop load generator over the clsm-net protocol.
//!
//! ```text
//! clsm-load --addr HOST:PORT [--threads N] [--seconds S] [--seed N]
//!           [--key-space N] [--read-pct P] [--theta F] [--prefill N]
//!           [--connections N] [--pipeline-depth N] [--json]
//! ```
//!
//! Reuses the `crates/workloads` heavy-tail key traces (§5.2's
//! production popularity shape) and the multi-threaded driver, so
//! every recorded latency is **client-observed**: queueing in the
//! client pipeline, the wire, server coalescing, and the store itself
//! all land in the histogram. Prints a human summary to stderr and,
//! with `--json`, a machine-readable result object to stdout.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use clsm_kv::KvStore;
use clsm_net::{NetOptions, RemoteStore};
use clsm_workloads::runner::{run_workload, Prefill, RunConfig};
use clsm_workloads::spec::{OpMix, WorkloadSpec};
use clsm_workloads::KeyDistribution;

fn usage() -> ! {
    eprintln!(
        "usage: clsm-load --addr HOST:PORT [--threads N] [--seconds S] [--seed N]\n\
         \x20               [--key-space N] [--read-pct P] [--theta F] [--prefill N]\n\
         \x20               [--connections N] [--pipeline-depth N] [--json]\n\
         \n\
         Open-loop load generator; latencies are client-observed over TCP."
    );
    std::process::exit(2);
}

fn parse_flag<T: std::str::FromStr>(args: &mut std::env::Args, flag: &str) -> T {
    let v = args.next().unwrap_or_else(|| {
        eprintln!("clsm-load: {flag} needs a value");
        usage();
    });
    v.parse().unwrap_or_else(|_| {
        eprintln!("clsm-load: bad value for {flag}: {v}");
        usage();
    })
}

fn main() -> ExitCode {
    let mut addr: Option<String> = None;
    let mut threads = 4usize;
    let mut seconds = 5.0f64;
    let mut seed = 0x5eed_u64;
    let mut key_space = 100_000u64;
    let mut read_pct = 90u32;
    let mut theta = 0.99f64;
    let mut prefill: Option<u64> = None;
    let mut connections = 4usize;
    let mut pipeline_depth = 64usize;
    let mut json = false;

    let mut args = std::env::args();
    let _argv0 = args.next();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = Some(parse_flag(&mut args, "--addr")),
            "--threads" => threads = parse_flag(&mut args, "--threads"),
            "--seconds" => seconds = parse_flag(&mut args, "--seconds"),
            "--seed" => seed = parse_flag(&mut args, "--seed"),
            "--key-space" => key_space = parse_flag(&mut args, "--key-space"),
            "--read-pct" => read_pct = parse_flag(&mut args, "--read-pct"),
            "--theta" => theta = parse_flag(&mut args, "--theta"),
            "--prefill" => prefill = Some(parse_flag(&mut args, "--prefill")),
            "--connections" => connections = parse_flag(&mut args, "--connections"),
            "--pipeline-depth" => pipeline_depth = parse_flag(&mut args, "--pipeline-depth"),
            "--json" => json = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("clsm-load: unknown flag {other}");
                usage();
            }
        }
    }
    let Some(addr) = addr else {
        eprintln!("clsm-load: --addr HOST:PORT is required");
        usage();
    };
    if read_pct > 100 {
        eprintln!("clsm-load: --read-pct must be 0..=100");
        return ExitCode::from(2);
    }

    let net = match NetOptions::builder()
        .addr(addr.clone())
        .connections(connections)
        .pipeline_depth(pipeline_depth)
        .build()
    {
        Ok(o) => o,
        Err(e) => {
            eprintln!("clsm-load: {e}");
            return ExitCode::from(2);
        }
    };
    let store: Arc<dyn KvStore> = match RemoteStore::connect(&net) {
        Ok(s) => Arc::new(s),
        Err(e) => {
            eprintln!("clsm-load: cannot connect to {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut spec = WorkloadSpec::synthetic(
        "net-heavy-tail",
        OpMix::read_heavy(read_pct),
        key_space,
        KeyDistribution::HeavyTail { theta },
    );
    spec.prefill = prefill.unwrap_or_else(|| key_space.min(50_000));

    let cfg = RunConfig {
        threads,
        duration: Duration::from_secs_f64(seconds),
        seed,
    };
    eprintln!(
        "clsm-load: {} threads x {:.1}s against {addr} ({} conns, depth {}), \
         {}% reads over {} keys (theta {theta})",
        threads, seconds, connections, pipeline_depth, read_pct, key_space
    );
    let result = match run_workload(&store, &spec, &cfg, Prefill::Sequential) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("clsm-load: workload failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    let p = |q: f64| result.latency.percentile(q) as f64 / 1000.0;
    eprintln!(
        "clsm-load: {:.0} ops/s over {:.2}s | latency us p50={:.0} p90={:.0} p99={:.0} p999={:.0}",
        result.ops_per_sec(),
        result.elapsed.as_secs_f64(),
        p(50.0),
        p(90.0),
        p(99.0),
        p(99.9),
    );
    if json {
        println!(
            "{{\"system\": \"cLSM-net\", \"threads\": {threads}, \"seconds\": {:.3}, \
             \"ops\": {}, \"ops_per_sec\": {:.1}, \
             \"p50_us\": {:.1}, \"p90_us\": {:.1}, \"p99_us\": {:.1}, \"p999_us\": {:.1}}}",
            result.elapsed.as_secs_f64(),
            result.ops,
            result.ops_per_sec(),
            p(50.0),
            p(90.0),
            p(99.0),
            p(99.9),
        );
    }
    ExitCode::SUCCESS
}
