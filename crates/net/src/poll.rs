//! Minimal readiness polling over raw file descriptors.
//!
//! The workspace vendors every dependency, so there is no `mio` or
//! `libc` crate to lean on. On Unix we declare the one libc symbol we
//! need — `poll(2)` — directly; the kernel interface is stable ABI.
//! Elsewhere the event loop falls back to optimistic readiness: report
//! every socket ready and let nonblocking reads/writes return
//! `WouldBlock`, throttled by the poll timeout.

/// Readable readiness (POLLIN).
pub const POLLIN: i16 = 0x1;
/// Writable readiness (POLLOUT).
pub const POLLOUT: i16 = 0x4;

/// One entry of a poll set, matching `struct pollfd`.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    /// File descriptor to watch.
    pub fd: i32,
    /// Requested events ([`POLLIN`] | [`POLLOUT`]).
    pub events: i16,
    /// Kernel-reported events (includes POLLERR/POLLHUP/POLLNVAL,
    /// which are always watched implicitly).
    pub revents: i16,
}

impl PollFd {
    /// A fresh entry watching `events` on `fd`.
    pub fn new(fd: i32, events: i16) -> Self {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// Whether any event fired (data, error, or hangup — all of which
    /// a read/write attempt will surface properly).
    pub fn ready(&self) -> bool {
        self.revents != 0
    }
}

#[cfg(unix)]
mod imp {
    use super::PollFd;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    }

    /// Blocks until an entry is ready or `timeout_ms` elapses.
    /// Returns the number of ready entries (0 on timeout).
    pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> std::io::Result<usize> {
        for fd in fds.iter_mut() {
            fd.revents = 0;
        }
        // SAFETY: `PollFd` is #[repr(C)] and layout-identical to
        // `struct pollfd`; the slice pointer/length pair is valid for
        // the duration of the call.
        let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) };
        if n < 0 {
            let err = std::io::Error::last_os_error();
            if err.kind() == std::io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        Ok(n as usize)
    }
}

#[cfg(not(unix))]
mod imp {
    use super::PollFd;

    /// Fallback: sleep for the timeout, then report everything ready.
    /// Nonblocking I/O turns spurious readiness into `WouldBlock`.
    pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> std::io::Result<usize> {
        if timeout_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(timeout_ms as u64));
        }
        for fd in fds.iter_mut() {
            fd.revents = fd.events;
        }
        Ok(fds.len())
    }
}

pub use imp::poll_fds;

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn poll_reports_readability() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();

        let mut fds = [PollFd::new(server_side.as_raw_fd(), POLLIN)];
        // Nothing written yet: on Unix this must time out with no
        // readiness; the portable fallback may report optimistically.
        if cfg!(unix) {
            let n = poll_fds(&mut fds, 50).unwrap();
            assert_eq!(n, 0, "unexpected readiness before any write");
            assert!(!fds[0].ready());
        }

        client.write_all(b"ping").unwrap();
        client.flush().unwrap();
        let n = poll_fds(&mut fds, 1000).unwrap();
        assert!(n >= 1);
        assert!(fds[0].ready());
    }
}
