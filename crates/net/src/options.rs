//! Unified, validated configuration for every networked component.
//!
//! Server, client, load generator, and doctor all construct a
//! [`NetOptions`] through the same builder (mirroring
//! `clsm::Options::builder()`), so there is exactly one place where
//! knobs are named, defaulted, and validated — no bare positional
//! flags drifting between binaries.

use clsm_util::error::{Error, Result};

/// Configuration shared by `clsm-server`, the client pool, `clsm-load`,
/// and `clsm-doctor --connect`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetOptions {
    /// Address to bind (server) or connect to (client), e.g.
    /// `127.0.0.1:7878`. Port `0` asks the OS for a free port (the
    /// bound address is reported by the server handle).
    pub addr: String,
    /// Server: number of event-loop worker threads.
    pub workers: usize,
    /// Server: maximum simultaneously accepted connections; further
    /// accepts are refused (closed immediately).
    pub max_connections: usize,
    /// Client: number of pooled connections.
    pub connections: usize,
    /// Client: per-connection cap on in-flight pipelined requests;
    /// senders block once the pipeline is this deep.
    pub pipeline_depth: usize,
    /// Per-connection read buffer chunk, in bytes.
    pub read_buffer_bytes: usize,
    /// Server: soft cap on a connection's queued response bytes before
    /// the worker forces a flush to the socket.
    pub write_buffer_bytes: usize,
    /// Largest acceptable frame (length prefix value); larger frames
    /// are a protocol error and fail the connection closed.
    pub max_frame_bytes: usize,
    /// Server: cap on operations merged into one coalesced
    /// [`clsm_kv::WriteBatch`] per worker tick.
    pub coalesce_ops: usize,
}

impl Default for NetOptions {
    fn default() -> Self {
        NetOptions {
            addr: "127.0.0.1:7878".to_string(),
            workers: 2,
            max_connections: 1024,
            connections: 4,
            pipeline_depth: 64,
            read_buffer_bytes: 64 * 1024,
            write_buffer_bytes: 256 * 1024,
            max_frame_bytes: 16 * 1024 * 1024,
            coalesce_ops: 4096,
        }
    }
}

impl NetOptions {
    /// Starts a builder from the defaults.
    pub fn builder() -> NetOptionsBuilder {
        NetOptionsBuilder {
            opts: NetOptions::default(),
        }
    }

    /// Rejects inconsistent configurations. Called by the builder and
    /// again by server/client entry points (options can be constructed
    /// literally).
    pub fn validate(&self) -> Result<()> {
        fn nonzero(name: &str, v: usize) -> Result<()> {
            if v == 0 {
                return Err(Error::invalid_argument(format!(
                    "NetOptions: {name} must be at least 1"
                )));
            }
            Ok(())
        }
        if self.addr.is_empty() {
            return Err(Error::invalid_argument("NetOptions: addr must be set"));
        }
        nonzero("workers", self.workers)?;
        nonzero("max_connections", self.max_connections)?;
        nonzero("connections", self.connections)?;
        nonzero("pipeline_depth", self.pipeline_depth)?;
        nonzero("read_buffer_bytes", self.read_buffer_bytes)?;
        nonzero("write_buffer_bytes", self.write_buffer_bytes)?;
        nonzero("coalesce_ops", self.coalesce_ops)?;
        // A frame must at least hold the request id + opcode, and the
        // u32 length prefix bounds it from above.
        if self.max_frame_bytes < crate::frame::MIN_FRAME_BYTES {
            return Err(Error::invalid_argument(format!(
                "NetOptions: max_frame_bytes must be at least {}",
                crate::frame::MIN_FRAME_BYTES
            )));
        }
        if self.max_frame_bytes > u32::MAX as usize {
            return Err(Error::invalid_argument(
                "NetOptions: max_frame_bytes cannot exceed the u32 length prefix",
            ));
        }
        Ok(())
    }
}

/// Builder for [`NetOptions`], mirroring `clsm::Options::builder()`.
#[derive(Debug, Clone)]
pub struct NetOptionsBuilder {
    opts: NetOptions,
}

impl NetOptionsBuilder {
    /// Starts from an existing configuration instead of the defaults.
    pub fn from_options(opts: NetOptions) -> Self {
        NetOptionsBuilder { opts }
    }

    /// Bind/connect address (`host:port`; port 0 = OS-assigned).
    pub fn addr(mut self, addr: impl Into<String>) -> Self {
        self.opts.addr = addr.into();
        self
    }

    /// Number of server event-loop workers.
    pub fn workers(mut self, n: usize) -> Self {
        self.opts.workers = n;
        self
    }

    /// Maximum simultaneously accepted connections.
    pub fn max_connections(mut self, n: usize) -> Self {
        self.opts.max_connections = n;
        self
    }

    /// Number of pooled client connections.
    pub fn connections(mut self, n: usize) -> Self {
        self.opts.connections = n;
        self
    }

    /// Per-connection in-flight request cap.
    pub fn pipeline_depth(mut self, n: usize) -> Self {
        self.opts.pipeline_depth = n;
        self
    }

    /// Read buffer chunk size, in bytes.
    pub fn read_buffer_bytes(mut self, n: usize) -> Self {
        self.opts.read_buffer_bytes = n;
        self
    }

    /// Queued-response soft cap before a forced socket flush, in bytes.
    pub fn write_buffer_bytes(mut self, n: usize) -> Self {
        self.opts.write_buffer_bytes = n;
        self
    }

    /// Largest acceptable frame, in bytes.
    pub fn max_frame_bytes(mut self, n: usize) -> Self {
        self.opts.max_frame_bytes = n;
        self
    }

    /// Cap on operations merged into one coalesced batch per tick.
    pub fn coalesce_ops(mut self, n: usize) -> Self {
        self.opts.coalesce_ops = n;
        self
    }

    /// Validates and returns the finished configuration.
    pub fn build(self) -> Result<NetOptions> {
        self.opts.validate()?;
        Ok(self.opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_round_trips_and_validates() {
        let opts = NetOptions::builder()
            .addr("127.0.0.1:0")
            .workers(3)
            .connections(8)
            .pipeline_depth(32)
            .build()
            .unwrap();
        assert_eq!(opts.addr, "127.0.0.1:0");
        assert_eq!(opts.workers, 3);
        assert_eq!(opts.connections, 8);
        assert_eq!(opts.pipeline_depth, 32);
        let same = NetOptionsBuilder::from_options(opts.clone())
            .build()
            .unwrap();
        assert_eq!(same, opts);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(NetOptions::builder().addr("").build().is_err());
        assert!(NetOptions::builder().workers(0).build().is_err());
        assert!(NetOptions::builder().connections(0).build().is_err());
        assert!(NetOptions::builder().pipeline_depth(0).build().is_err());
        assert!(NetOptions::builder().max_frame_bytes(4).build().is_err());
        assert!(NetOptions::builder()
            .max_frame_bytes(u32::MAX as usize + 1)
            .build()
            .is_err());
        // Every rejection is the typed InvalidArgument kind.
        let err = NetOptions::builder().workers(0).build().unwrap_err();
        assert_eq!(err.kind(), clsm_util::error::ErrorKind::InvalidArgument);
    }
}
