//! Length-prefixed framing: the outermost layer of the wire protocol.
//!
//! Every message travels as one frame:
//!
//! ```text
//! +----------+----------------+-----------+------------------+
//! | len: u32 | request id: u64| opcode: u8| body (len-9 B)   |
//! |  (LE)    |     (LE)       |           |                  |
//! +----------+----------------+-----------+------------------+
//! ```
//!
//! `len` counts everything after itself (id + opcode + body), so the
//! smallest legal frame is 9 bytes of payload. [`FrameReader`] is a
//! push parser: feed it arbitrary byte chunks as they arrive from a
//! nonblocking socket and it yields complete payloads, however the
//! frames were split or merged across reads. Violations (oversized or
//! undersized length prefix) are **fail-closed**: the reader returns a
//! protocol error and the connection must be dropped — after a framing
//! error the byte stream has no trustworthy resynchronization point.

use clsm_util::error::{Error, Result};

/// Bytes in the length prefix itself.
pub const LEN_PREFIX_BYTES: usize = 4;

/// Minimum legal `len` value: request id (8) + opcode (1).
pub const MIN_FRAME_BYTES: usize = 9;

/// Appends one frame (length prefix + `payload`) to `out`.
///
/// `payload` must already start with the request id and opcode;
/// callers build it with [`crate::proto`] encoders.
pub fn write_frame(out: &mut Vec<u8>, payload: &[u8]) {
    debug_assert!(payload.len() >= MIN_FRAME_BYTES);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Incremental frame parser over an untrusted byte stream.
#[derive(Debug)]
pub struct FrameReader {
    buf: Vec<u8>,
    /// Read cursor into `buf`; consumed bytes are compacted away
    /// periodically rather than on every frame.
    pos: usize,
    max_frame_bytes: usize,
    poisoned: bool,
}

impl FrameReader {
    /// Creates a reader enforcing `max_frame_bytes` on the prefix.
    pub fn new(max_frame_bytes: usize) -> Self {
        FrameReader {
            buf: Vec::new(),
            pos: 0,
            max_frame_bytes,
            poisoned: false,
        }
    }

    /// Appends freshly received bytes.
    pub fn feed(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Bytes buffered but not yet returned as frames.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Extracts the next complete frame payload (id + opcode + body,
    /// without the length prefix), or `Ok(None)` if more bytes are
    /// needed.
    ///
    /// A malformed length prefix poisons the reader: the error is
    /// returned now and on every subsequent call, so a connection
    /// can never resume after a framing violation.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>> {
        if self.poisoned {
            return Err(Error::protocol("frame stream previously failed"));
        }
        let avail = self.buf.len() - self.pos;
        if avail < LEN_PREFIX_BYTES {
            return Ok(None);
        }
        let len = u32::from_le_bytes(
            self.buf[self.pos..self.pos + LEN_PREFIX_BYTES]
                .try_into()
                .expect("4 bytes checked above"),
        ) as usize;
        if len < MIN_FRAME_BYTES {
            self.poisoned = true;
            return Err(Error::protocol(format!(
                "frame length {len} below minimum {MIN_FRAME_BYTES}"
            )));
        }
        if len > self.max_frame_bytes {
            self.poisoned = true;
            return Err(Error::protocol(format!(
                "frame length {len} exceeds limit {}",
                self.max_frame_bytes
            )));
        }
        if avail < LEN_PREFIX_BYTES + len {
            return Ok(None);
        }
        let start = self.pos + LEN_PREFIX_BYTES;
        let frame = self.buf[start..start + len].to_vec();
        self.pos = start + len;
        // Compact once the dead prefix dominates, amortizing the copy.
        if self.pos > 4096 && self.pos * 2 > self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        Ok(Some(frame))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(n: usize) -> Vec<u8> {
        (0..n).map(|i| i as u8).collect()
    }

    #[test]
    fn frames_survive_arbitrary_chunking() {
        let mut wire = Vec::new();
        let a = payload(MIN_FRAME_BYTES);
        let b = payload(100);
        write_frame(&mut wire, &a);
        write_frame(&mut wire, &b);

        // Feed one byte at a time: both frames still come out intact.
        let mut r = FrameReader::new(1 << 20);
        let mut got = Vec::new();
        for byte in &wire {
            r.feed(&[*byte]);
            while let Some(f) = r.next_frame().unwrap() {
                got.push(f);
            }
        }
        assert_eq!(got, vec![a.clone(), b.clone()]);

        // Feed everything at once: same result.
        let mut r = FrameReader::new(1 << 20);
        r.feed(&wire);
        assert_eq!(r.next_frame().unwrap().unwrap(), a);
        assert_eq!(r.next_frame().unwrap().unwrap(), b);
        assert_eq!(r.next_frame().unwrap(), None);
        assert_eq!(r.pending_bytes(), 0);
    }

    #[test]
    fn oversized_prefix_fails_closed() {
        let mut r = FrameReader::new(1024);
        r.feed(&(4096u32).to_le_bytes());
        let err = r.next_frame().unwrap_err();
        assert_eq!(err.kind(), clsm_util::error::ErrorKind::Protocol);
        // Poisoned: even valid bytes afterwards keep failing.
        let mut ok = Vec::new();
        write_frame(&mut ok, &payload(MIN_FRAME_BYTES));
        r.feed(&ok);
        assert!(r.next_frame().is_err());
    }

    #[test]
    fn undersized_prefix_fails_closed() {
        let mut r = FrameReader::new(1024);
        r.feed(&(3u32).to_le_bytes());
        assert!(r.next_frame().is_err());
    }

    #[test]
    fn truncated_frame_waits_for_more() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload(50));
        let mut r = FrameReader::new(1024);
        r.feed(&wire[..wire.len() - 1]);
        assert_eq!(r.next_frame().unwrap(), None);
        r.feed(&wire[wire.len() - 1..]);
        assert_eq!(r.next_frame().unwrap().unwrap(), payload(50));
    }

    #[test]
    fn long_streams_compact_without_losing_frames() {
        let mut r = FrameReader::new(1024);
        let p = payload(64);
        for round in 0..1000 {
            let mut wire = Vec::new();
            write_frame(&mut wire, &p);
            r.feed(&wire);
            assert_eq!(r.next_frame().unwrap().unwrap(), p, "round {round}");
        }
        assert_eq!(r.pending_bytes(), 0);
        assert!(r.buf.len() < 8192, "compaction kept the buffer bounded");
    }
}
