//! Body encoding: [`Request`]/[`Response`] ⇄ bytes.
//!
//! The wire protocol is a serialization of the `clsm_kv::api` enums —
//! not a parallel API — so adding a store operation means adding an
//! enum variant and its encoding here, and every driver picks it up.
//!
//! Encoded payloads start with the 8-byte request id and 1-byte opcode
//! (see [`crate::frame`] for the outer layout); bodies use the same
//! varint/length-prefixed-slice vocabulary as the storage layer
//! (`clsm_util::coding`). Decoding is strict and total: every
//! violation — unknown opcode, short body, trailing garbage, reserved
//! bits set — is a typed [`clsm_util::error::ErrorKind::Protocol`] error, never a panic,
//! because these bytes arrive from an untrusted peer.
//!
//! ## Opcodes
//!
//! | code | request            | code | request / control   |
//! |-----:|--------------------|-----:|---------------------|
//! |    1 | `Get`              |    7 | `SnapshotCreate`    |
//! |    2 | `Put`              |    8 | `SnapshotGet`       |
//! |    3 | `Delete`           |    9 | `SnapshotScan`      |
//! |    4 | `Write`            |   10 | `SnapshotRelease`   |
//! |    5 | `PutIfAbsent`      |   11 | `Stats`             |
//! |    6 | `Scan`             |   12 | `Shutdown` (control)|

use std::ops::Bound;

use clsm_kv::api::{Request, Response, WireError};
use clsm_kv::{ScanRange, WriteBatch, WriteOptions};
use clsm_util::coding::{get_varint32, put_fixed64, put_length_prefixed_slice, put_varint32};
use clsm_util::error::{Error, Result};

/// A decoded inbound payload: either a store request or the one
/// connection-level control message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireRequest {
    /// A store operation, dispatched through `clsm_kv::api::dispatch`.
    Op(Request),
    /// Ask the server to shut down cleanly (used by `clsm-doctor
    /// --connect --shutdown` and CI teardown).
    Shutdown,
}

const OP_GET: u8 = 1;
const OP_PUT: u8 = 2;
const OP_DELETE: u8 = 3;
const OP_WRITE: u8 = 4;
const OP_PUT_IF_ABSENT: u8 = 5;
const OP_SCAN: u8 = 6;
const OP_SNAPSHOT_CREATE: u8 = 7;
const OP_SNAPSHOT_GET: u8 = 8;
const OP_SNAPSHOT_SCAN: u8 = 9;
const OP_SNAPSHOT_RELEASE: u8 = 10;
const OP_STATS: u8 = 11;
const OP_SHUTDOWN: u8 = 12;

const RESP_DONE: u8 = 1;
const RESP_VALUE: u8 = 2;
const RESP_APPLIED: u8 = 3;
const RESP_ENTRIES: u8 = 4;
const RESP_SNAPSHOT_ID: u8 = 5;
const RESP_STATS: u8 = 6;
const RESP_ERROR: u8 = 255;

/// The request id carried by a server-originated fatal error frame
/// (protocol violations that belong to the connection, not to any one
/// request).
pub const CONNECTION_ERROR_ID: u64 = 0;

// ---------------------------------------------------------------------
// Checked reader over untrusted bytes.
// ---------------------------------------------------------------------

struct Rd<'a> {
    buf: &'a [u8],
}

impl<'a> Rd<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Rd { buf }
    }

    fn u8(&mut self) -> Result<u8> {
        match self.buf.split_first() {
            Some((b, rest)) => {
                self.buf = rest;
                Ok(*b)
            }
            None => Err(Error::protocol("body truncated reading u8")),
        }
    }

    fn fixed64(&mut self) -> Result<u64> {
        if self.buf.len() < 8 {
            return Err(Error::protocol("body truncated reading u64"));
        }
        let (head, rest) = self.buf.split_at(8);
        self.buf = rest;
        Ok(u64::from_le_bytes(head.try_into().expect("8 bytes")))
    }

    fn varint32(&mut self) -> Result<u32> {
        let (v, n) =
            get_varint32(self.buf).map_err(|e| Error::protocol(format!("bad varint: {e}")))?;
        self.buf = &self.buf[n..];
        Ok(v)
    }

    fn slice(&mut self) -> Result<Vec<u8>> {
        let len = self.varint32()? as usize;
        if self.buf.len() < len {
            return Err(Error::protocol(format!(
                "length-prefixed slice claims {len} bytes, {} remain",
                self.buf.len()
            )));
        }
        let (head, rest) = self.buf.split_at(len);
        self.buf = rest;
        Ok(head.to_vec())
    }

    fn finish(self) -> Result<()> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(Error::protocol(format!(
                "{} trailing bytes after body",
                self.buf.len()
            )))
        }
    }
}

// ---------------------------------------------------------------------
// Shared sub-encodings.
// ---------------------------------------------------------------------

fn put_write_options(dst: &mut Vec<u8>, opts: &WriteOptions) {
    let mut bits = 0u8;
    if opts.sync {
        bits |= 1;
    }
    if opts.disable_wal {
        bits |= 2;
    }
    dst.push(bits);
}

fn read_write_options(rd: &mut Rd<'_>) -> Result<WriteOptions> {
    let bits = rd.u8()?;
    if bits & !3 != 0 {
        return Err(Error::protocol(format!(
            "reserved WriteOptions bits set: {bits:#04x}"
        )));
    }
    Ok(WriteOptions {
        sync: bits & 1 != 0,
        disable_wal: bits & 2 != 0,
    })
}

const BOUND_UNBOUNDED: u8 = 0;
const BOUND_INCLUDED: u8 = 1;
const BOUND_EXCLUDED: u8 = 2;

fn put_bound(dst: &mut Vec<u8>, b: &Bound<Vec<u8>>) {
    match b {
        Bound::Unbounded => dst.push(BOUND_UNBOUNDED),
        Bound::Included(k) => {
            dst.push(BOUND_INCLUDED);
            put_length_prefixed_slice(dst, k);
        }
        Bound::Excluded(k) => {
            dst.push(BOUND_EXCLUDED);
            put_length_prefixed_slice(dst, k);
        }
    }
}

fn read_bound(rd: &mut Rd<'_>) -> Result<Bound<Vec<u8>>> {
    match rd.u8()? {
        BOUND_UNBOUNDED => Ok(Bound::Unbounded),
        BOUND_INCLUDED => Ok(Bound::Included(rd.slice()?)),
        BOUND_EXCLUDED => Ok(Bound::Excluded(rd.slice()?)),
        t => Err(Error::protocol(format!("unknown bound tag {t}"))),
    }
}

fn put_range(dst: &mut Vec<u8>, range: &ScanRange) {
    put_bound(dst, &range.start);
    put_bound(dst, &range.end);
}

fn read_range(rd: &mut Rd<'_>) -> Result<ScanRange> {
    Ok(ScanRange {
        start: read_bound(rd)?,
        end: read_bound(rd)?,
    })
}

fn put_header(dst: &mut Vec<u8>, id: u64, opcode: u8) {
    put_fixed64(dst, id);
    dst.push(opcode);
}

// ---------------------------------------------------------------------
// Requests.
// ---------------------------------------------------------------------

/// Encodes `req` (with its pipelining id) into a frame payload.
pub fn encode_request(id: u64, req: &Request) -> Vec<u8> {
    let mut dst = Vec::with_capacity(32);
    match req {
        Request::Get { key } => {
            put_header(&mut dst, id, OP_GET);
            put_length_prefixed_slice(&mut dst, key);
        }
        Request::Put { key, value, opts } => {
            put_header(&mut dst, id, OP_PUT);
            put_write_options(&mut dst, opts);
            put_length_prefixed_slice(&mut dst, key);
            put_length_prefixed_slice(&mut dst, value);
        }
        Request::Delete { key, opts } => {
            put_header(&mut dst, id, OP_DELETE);
            put_write_options(&mut dst, opts);
            put_length_prefixed_slice(&mut dst, key);
        }
        Request::Write { batch, opts } => {
            put_header(&mut dst, id, OP_WRITE);
            put_write_options(&mut dst, opts);
            put_varint32(&mut dst, batch.len() as u32);
            for (key, value) in batch.iter() {
                match value {
                    Some(v) => {
                        dst.push(1);
                        put_length_prefixed_slice(&mut dst, key);
                        put_length_prefixed_slice(&mut dst, v);
                    }
                    None => {
                        dst.push(0);
                        put_length_prefixed_slice(&mut dst, key);
                    }
                }
            }
        }
        Request::PutIfAbsent { key, value } => {
            put_header(&mut dst, id, OP_PUT_IF_ABSENT);
            put_length_prefixed_slice(&mut dst, key);
            put_length_prefixed_slice(&mut dst, value);
        }
        Request::Scan { range, limit } => {
            put_header(&mut dst, id, OP_SCAN);
            put_range(&mut dst, range);
            put_varint32(&mut dst, *limit);
        }
        Request::SnapshotCreate => {
            put_header(&mut dst, id, OP_SNAPSHOT_CREATE);
        }
        Request::SnapshotGet { snapshot, key } => {
            put_header(&mut dst, id, OP_SNAPSHOT_GET);
            put_fixed64(&mut dst, *snapshot);
            put_length_prefixed_slice(&mut dst, key);
        }
        Request::SnapshotScan {
            snapshot,
            range,
            limit,
        } => {
            put_header(&mut dst, id, OP_SNAPSHOT_SCAN);
            put_fixed64(&mut dst, *snapshot);
            put_range(&mut dst, range);
            put_varint32(&mut dst, *limit);
        }
        Request::SnapshotRelease { snapshot } => {
            put_header(&mut dst, id, OP_SNAPSHOT_RELEASE);
            put_fixed64(&mut dst, *snapshot);
        }
        Request::Stats => {
            put_header(&mut dst, id, OP_STATS);
        }
    }
    dst
}

/// Encodes the shutdown control message.
pub fn encode_shutdown(id: u64) -> Vec<u8> {
    let mut dst = Vec::with_capacity(9);
    put_header(&mut dst, id, OP_SHUTDOWN);
    dst
}

/// Decodes a frame payload into `(request id, request)`.
pub fn decode_request(payload: &[u8]) -> Result<(u64, WireRequest)> {
    let mut rd = Rd::new(payload);
    let id = rd.fixed64()?;
    let opcode = rd.u8()?;
    let req = match opcode {
        OP_GET => WireRequest::Op(Request::Get { key: rd.slice()? }),
        OP_PUT => {
            let opts = read_write_options(&mut rd)?;
            WireRequest::Op(Request::Put {
                key: rd.slice()?,
                value: rd.slice()?,
                opts,
            })
        }
        OP_DELETE => {
            let opts = read_write_options(&mut rd)?;
            WireRequest::Op(Request::Delete {
                key: rd.slice()?,
                opts,
            })
        }
        OP_WRITE => {
            let opts = read_write_options(&mut rd)?;
            let count = rd.varint32()?;
            // An op is at least tag + empty key prefix (2 bytes): bound
            // the claimed count by what the body could possibly hold.
            if count as usize > payload.len() / 2 + 1 {
                return Err(Error::protocol(format!(
                    "batch claims {count} ops in a {} byte body",
                    payload.len()
                )));
            }
            let mut batch = WriteBatch::new();
            for _ in 0..count {
                match rd.u8()? {
                    1 => {
                        let key = rd.slice()?;
                        let value = rd.slice()?;
                        batch.put(key, value);
                    }
                    0 => {
                        batch.delete(rd.slice()?);
                    }
                    t => {
                        return Err(Error::protocol(format!("unknown batch op tag {t}")));
                    }
                }
            }
            WireRequest::Op(Request::Write { batch, opts })
        }
        OP_PUT_IF_ABSENT => WireRequest::Op(Request::PutIfAbsent {
            key: rd.slice()?,
            value: rd.slice()?,
        }),
        OP_SCAN => WireRequest::Op(Request::Scan {
            range: read_range(&mut rd)?,
            limit: rd.varint32()?,
        }),
        OP_SNAPSHOT_CREATE => WireRequest::Op(Request::SnapshotCreate),
        OP_SNAPSHOT_GET => WireRequest::Op(Request::SnapshotGet {
            snapshot: rd.fixed64()?,
            key: rd.slice()?,
        }),
        OP_SNAPSHOT_SCAN => WireRequest::Op(Request::SnapshotScan {
            snapshot: rd.fixed64()?,
            range: read_range(&mut rd)?,
            limit: rd.varint32()?,
        }),
        OP_SNAPSHOT_RELEASE => WireRequest::Op(Request::SnapshotRelease {
            snapshot: rd.fixed64()?,
        }),
        OP_STATS => WireRequest::Op(Request::Stats),
        OP_SHUTDOWN => WireRequest::Shutdown,
        op => return Err(Error::protocol(format!("unknown opcode {op}"))),
    };
    rd.finish()?;
    Ok((id, req))
}

// ---------------------------------------------------------------------
// Responses.
// ---------------------------------------------------------------------

/// Encodes `resp` for the request identified by `id`.
pub fn encode_response(id: u64, resp: &Response) -> Vec<u8> {
    let mut dst = Vec::with_capacity(32);
    match resp {
        Response::Done => {
            put_header(&mut dst, id, RESP_DONE);
        }
        Response::Value(v) => {
            put_header(&mut dst, id, RESP_VALUE);
            match v {
                Some(v) => {
                    dst.push(1);
                    put_length_prefixed_slice(&mut dst, v);
                }
                None => dst.push(0),
            }
        }
        Response::Applied(applied) => {
            put_header(&mut dst, id, RESP_APPLIED);
            dst.push(*applied as u8);
        }
        Response::Entries(entries) => {
            put_header(&mut dst, id, RESP_ENTRIES);
            put_varint32(&mut dst, entries.len() as u32);
            for (k, v) in entries {
                put_length_prefixed_slice(&mut dst, k);
                put_length_prefixed_slice(&mut dst, v);
            }
        }
        Response::SnapshotId(snap) => {
            put_header(&mut dst, id, RESP_SNAPSHOT_ID);
            put_fixed64(&mut dst, *snap);
        }
        Response::Stats(text) => {
            put_header(&mut dst, id, RESP_STATS);
            put_length_prefixed_slice(&mut dst, text.as_bytes());
        }
        Response::Error(e) => {
            put_header(&mut dst, id, RESP_ERROR);
            put_varint32(&mut dst, e.code as u32);
            dst.push(e.retryable as u8);
            put_length_prefixed_slice(&mut dst, e.message.as_bytes());
        }
    }
    dst
}

/// Decodes a frame payload into `(request id, response)`.
pub fn decode_response(payload: &[u8]) -> Result<(u64, Response)> {
    let mut rd = Rd::new(payload);
    let id = rd.fixed64()?;
    let tag = rd.u8()?;
    let resp = match tag {
        RESP_DONE => Response::Done,
        RESP_VALUE => match rd.u8()? {
            0 => Response::Value(None),
            1 => Response::Value(Some(rd.slice()?)),
            t => return Err(Error::protocol(format!("unknown value presence tag {t}"))),
        },
        RESP_APPLIED => match rd.u8()? {
            0 => Response::Applied(false),
            1 => Response::Applied(true),
            t => return Err(Error::protocol(format!("unknown applied tag {t}"))),
        },
        RESP_ENTRIES => {
            let count = rd.varint32()?;
            if count as usize > payload.len() / 2 + 1 {
                return Err(Error::protocol(format!(
                    "entry list claims {count} pairs in a {} byte body",
                    payload.len()
                )));
            }
            let mut entries = Vec::with_capacity(count as usize);
            for _ in 0..count {
                let k = rd.slice()?;
                let v = rd.slice()?;
                entries.push((k, v));
            }
            Response::Entries(entries)
        }
        RESP_SNAPSHOT_ID => Response::SnapshotId(rd.fixed64()?),
        RESP_STATS => {
            let bytes = rd.slice()?;
            let text =
                String::from_utf8(bytes).map_err(|_| Error::protocol("stats text is not UTF-8"))?;
            Response::Stats(text)
        }
        RESP_ERROR => {
            let code = rd.varint32()?;
            if code > u16::MAX as u32 {
                return Err(Error::protocol(format!("error code {code} out of range")));
            }
            let retryable = match rd.u8()? {
                0 => false,
                1 => true,
                t => return Err(Error::protocol(format!("unknown retryable tag {t}"))),
            };
            let bytes = rd.slice()?;
            let message = String::from_utf8(bytes)
                .map_err(|_| Error::protocol("error message is not UTF-8"))?;
            Response::Error(WireError {
                code: code as u16,
                message,
                retryable,
            })
        }
        t => return Err(Error::protocol(format!("unknown response tag {t}"))),
    };
    rd.finish()?;
    Ok((id, resp))
}

/// Builds the frame payload for a connection-fatal protocol error,
/// sent (best-effort) just before the server closes the connection.
pub fn encode_connection_error(err: &Error) -> Vec<u8> {
    encode_response(
        CONNECTION_ERROR_ID,
        &Response::Error(WireError::from_error(err)),
    )
}

/// Whether a decoded error represents a connection-level failure
/// (as opposed to one request's error).
pub fn is_connection_error(id: u64, resp: &Response) -> bool {
    id == CONNECTION_ERROR_ID && matches!(resp, Response::Error(_))
}

#[cfg(test)]
mod tests {
    use super::*;
    use clsm_util::error::ErrorKind;

    fn round_trip_request(req: Request) {
        let payload = encode_request(7, &req);
        let (id, got) = decode_request(&payload).unwrap();
        assert_eq!(id, 7);
        assert_eq!(got, WireRequest::Op(req));
    }

    fn round_trip_response(resp: Response) {
        let payload = encode_response(9, &resp);
        let (id, got) = decode_response(&payload).unwrap();
        assert_eq!(id, 9);
        assert_eq!(got, resp);
    }

    #[test]
    fn every_request_round_trips() {
        let mut batch = WriteBatch::new();
        batch.put(b"k1", b"v1");
        batch.delete(b"k2");
        batch.put(b"", b"");
        round_trip_request(Request::Get { key: b"k".to_vec() });
        round_trip_request(Request::Put {
            key: b"k".to_vec(),
            value: vec![0u8; 1000],
            opts: WriteOptions::durable(),
        });
        round_trip_request(Request::Delete {
            key: vec![],
            opts: WriteOptions {
                sync: false,
                disable_wal: true,
            },
        });
        round_trip_request(Request::Write {
            batch,
            opts: WriteOptions::new(),
        });
        round_trip_request(Request::PutIfAbsent {
            key: b"k".to_vec(),
            value: b"v".to_vec(),
        });
        for range in [
            ScanRange::all(),
            ScanRange::from_start(b"a".to_vec()),
            ScanRange::new(b"a".to_vec()..b"z".to_vec()),
            ScanRange {
                start: Bound::Excluded(b"a".to_vec()),
                end: Bound::Included(b"z".to_vec()),
            },
        ] {
            round_trip_request(Request::Scan {
                range: range.clone(),
                limit: 17,
            });
            round_trip_request(Request::SnapshotScan {
                snapshot: u64::MAX,
                range,
                limit: 0,
            });
        }
        round_trip_request(Request::SnapshotCreate);
        round_trip_request(Request::SnapshotGet {
            snapshot: 3,
            key: b"k".to_vec(),
        });
        round_trip_request(Request::SnapshotRelease { snapshot: 3 });
        round_trip_request(Request::Stats);
    }

    #[test]
    fn shutdown_round_trips() {
        let payload = encode_shutdown(42);
        let (id, got) = decode_request(&payload).unwrap();
        assert_eq!(id, 42);
        assert_eq!(got, WireRequest::Shutdown);
    }

    #[test]
    fn every_response_round_trips() {
        round_trip_response(Response::Done);
        round_trip_response(Response::Value(None));
        round_trip_response(Response::Value(Some(vec![0xff; 300])));
        round_trip_response(Response::Applied(true));
        round_trip_response(Response::Applied(false));
        round_trip_response(Response::Entries(vec![]));
        round_trip_response(Response::Entries(vec![
            (b"a".to_vec(), b"1".to_vec()),
            (vec![], vec![]),
        ]));
        round_trip_response(Response::SnapshotId(u64::MAX));
        round_trip_response(Response::Stats("net.requests 5\n".to_string()));
        round_trip_response(Response::Error(WireError {
            code: 4,
            message: "bad argument".to_string(),
            retryable: false,
        }));
    }

    #[test]
    fn garbage_opcode_is_a_protocol_error() {
        let mut payload = Vec::new();
        put_fixed64(&mut payload, 1);
        payload.push(0xEE);
        let err = decode_request(&payload).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Protocol);
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut payload = encode_request(1, &Request::Stats);
        payload.push(0);
        assert_eq!(
            decode_request(&payload).unwrap_err().kind(),
            ErrorKind::Protocol
        );
        let mut payload = encode_response(1, &Response::Done);
        payload.push(0);
        assert_eq!(
            decode_response(&payload).unwrap_err().kind(),
            ErrorKind::Protocol
        );
    }

    #[test]
    fn truncated_bodies_are_rejected_not_panicked() {
        let full = encode_request(
            1,
            &Request::Put {
                key: b"key".to_vec(),
                value: b"value".to_vec(),
                opts: WriteOptions::new(),
            },
        );
        // Every strict prefix must fail cleanly.
        for cut in 0..full.len() {
            let err = decode_request(&full[..cut]).unwrap_err();
            assert_eq!(err.kind(), ErrorKind::Protocol, "cut at {cut}");
        }
    }

    #[test]
    fn reserved_write_option_bits_are_rejected() {
        let mut payload = Vec::new();
        put_fixed64(&mut payload, 1);
        payload.push(2); // OP_PUT
        payload.push(0x80); // reserved bit
        put_length_prefixed_slice(&mut payload, b"k");
        put_length_prefixed_slice(&mut payload, b"v");
        assert_eq!(
            decode_request(&payload).unwrap_err().kind(),
            ErrorKind::Protocol
        );
    }

    #[test]
    fn absurd_counts_are_rejected_before_allocation() {
        // A Write claiming u32::MAX ops in a tiny body must fail on the
        // count check, not attempt to loop/allocate.
        let mut payload = Vec::new();
        put_fixed64(&mut payload, 1);
        payload.push(4); // OP_WRITE
        payload.push(0); // default options
        put_varint32(&mut payload, u32::MAX);
        assert_eq!(
            decode_request(&payload).unwrap_err().kind(),
            ErrorKind::Protocol
        );
    }

    #[test]
    fn connection_error_frames_are_recognizable() {
        let payload = encode_connection_error(&Error::protocol("bad frame"));
        let (id, resp) = decode_response(&payload).unwrap();
        assert!(is_connection_error(id, &resp));
        match resp {
            Response::Error(e) => {
                assert_eq!(e.code, ErrorKind::Protocol.code());
                assert!(!e.retryable);
            }
            other => panic!("expected error, got {other:?}"),
        }
    }
}
