//! The `clsm-server` event loop: poll(2) workers over nonblocking
//! sockets, feeding the group-commit write path.
//!
//! ## Architecture
//!
//! One acceptor thread owns the listener and deals accepted
//! connections to `NetOptions::workers` event-loop workers round-robin.
//! Each worker runs a classic readiness loop:
//!
//! 1. poll its connections (plus a 50 ms timeout so shutdown and
//!    freshly dealt connections are noticed),
//! 2. drain every readable socket into that connection's
//!    [`FrameReader`],
//! 3. decode and execute the completed frames,
//! 4. flush response bytes, keeping `WouldBlock` remainders for the
//!    next tick.
//!
//! ## Write coalescing
//!
//! Step 3 is where the serving layer meets the paper: consecutive
//! write requests (put/delete/batch) decoded in one tick — from *any*
//! of the worker's connections — that share identical [`WriteOptions`]
//! are merged into a single [`WriteBatch`] and applied with one
//! `KvStore::write` call, which in cLSM enters the group-commit
//! pipeline as one unit (and may group further with other workers'
//! batches). Each member request still gets its own response. Any
//! non-write request first flushes the pending group, so one
//! connection's operations always execute in the order it sent them —
//! read-your-writes is preserved per connection. Merging is safe for
//! linearizability: member operations are all in flight simultaneously
//! (their invocation→response intervals overlap), so a single commit
//! point inside all of them is a legal linearization.
//!
//! ## Failure containment
//!
//! A malformed frame poisons only its own connection: the worker sends
//! a best-effort connection-error frame (request id 0), closes the
//! socket, and counts `net.protocol_errors`. Neighboring connections
//! on the same worker are untouched. Store-level errors cross the wire
//! as structured codes (see [`clsm_kv::api::WireError`]) and fail only
//! their own request.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use clsm_kv::api::{dispatch, Request, Response, SnapshotSessions, WireError};
use clsm_kv::{KvStore, WriteBatch, WriteOptions};
use clsm_util::error::{Error, Result};
use clsm_util::metrics::{ConcurrentHistogram, Counter, Gauge, MetricsRegistry};

use crate::frame::{write_frame, FrameReader};
use crate::poll::{poll_fds, PollFd, POLLIN, POLLOUT};
use crate::proto::{self, WireRequest};
use crate::NetOptions;

/// Hard multiple of `write_buffer_bytes` past which a connection that
/// is not draining its responses is closed as a slow consumer.
const SLOW_CONSUMER_MULTIPLE: usize = 16;

/// Starts serving `store` per `opts`; returns once the listener is
/// bound and workers are running.
pub fn serve(store: Arc<dyn KvStore>, opts: &NetOptions) -> Result<ServerHandle> {
    opts.validate()?;
    let listener = TcpListener::bind(&opts.addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    let registry = Arc::new(MetricsRegistry::new());
    let shutdown = Arc::new(AtomicBool::new(false));
    let live_conns = Arc::new(AtomicUsize::new(0));

    let mut threads = Vec::with_capacity(opts.workers + 1);
    let mut senders: Vec<Sender<TcpStream>> = Vec::with_capacity(opts.workers);
    for w in 0..opts.workers {
        let (tx, rx) = channel();
        senders.push(tx);
        let worker = Worker::new(
            Arc::clone(&store),
            opts.clone(),
            Arc::clone(&registry),
            Arc::clone(&shutdown),
            Arc::clone(&live_conns),
            rx,
        );
        threads.push(
            std::thread::Builder::new()
                .name(format!("clsm-net-worker-{w}"))
                .spawn(move || worker.run())
                .map_err(Error::from)?,
        );
    }

    let acceptor = Acceptor {
        listener,
        senders,
        opts: opts.clone(),
        shutdown: Arc::clone(&shutdown),
        live_conns,
        accepts: registry.counter("net.accepts"),
        refused: registry.counter("net.conn_refused"),
    };
    threads.push(
        std::thread::Builder::new()
            .name("clsm-net-acceptor".to_string())
            .spawn(move || acceptor.run())
            .map_err(Error::from)?,
    );

    Ok(ServerHandle {
        addr,
        shutdown,
        threads,
        registry,
    })
}

/// A running server: the bound address plus the thread lifecycle.
///
/// Dropping the handle shuts the server down and joins its threads.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    registry: Arc<MetricsRegistry>,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .field("shut_down", &self.shutdown.load(Ordering::Relaxed))
            .finish()
    }
}

impl ServerHandle {
    /// The actually bound address (resolves port 0 requests).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's `net.*` metrics registry.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Whether shutdown has been requested (e.g. by the wire opcode).
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    /// Blocks until the server stops (a client sent the shutdown
    /// opcode, or another handle owner requested it).
    pub fn wait(mut self) {
        self.join_threads();
    }

    /// Requests shutdown and joins all server threads.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        self.join_threads();
    }

    fn join_threads(&mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        self.join_threads();
    }
}

// ---------------------------------------------------------------------
// Acceptor.
// ---------------------------------------------------------------------

struct Acceptor {
    listener: TcpListener,
    senders: Vec<Sender<TcpStream>>,
    opts: NetOptions,
    shutdown: Arc<AtomicBool>,
    live_conns: Arc<AtomicUsize>,
    accepts: Arc<Counter>,
    refused: Arc<Counter>,
}

impl Acceptor {
    fn run(self) {
        use std::os::fd::AsRawFd;
        let mut next = 0usize;
        let mut fds = [PollFd::new(self.listener.as_raw_fd(), POLLIN)];
        while !self.shutdown.load(Ordering::Relaxed) {
            let _ = poll_fds(&mut fds, 100);
            loop {
                match self.listener.accept() {
                    Ok((stream, _peer)) => {
                        if self.live_conns.load(Ordering::Relaxed) >= self.opts.max_connections {
                            // At capacity: refuse by closing immediately.
                            self.refused.inc();
                            drop(stream);
                            continue;
                        }
                        let _ = stream.set_nodelay(true);
                        if stream.set_nonblocking(true).is_err() {
                            continue;
                        }
                        self.accepts.inc();
                        self.live_conns.fetch_add(1, Ordering::Relaxed);
                        // Round-robin deal; a worker that exited means
                        // the server is shutting down anyway.
                        if self.senders[next % self.senders.len()]
                            .send(stream)
                            .is_err()
                        {
                            self.live_conns.fetch_sub(1, Ordering::Relaxed);
                            return;
                        }
                        next = next.wrapping_add(1);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => return,
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Connection state.
// ---------------------------------------------------------------------

struct Conn {
    stream: TcpStream,
    frames: FrameReader,
    sessions: SnapshotSessions,
    /// Encoded responses not yet written to the socket.
    out: Vec<u8>,
    /// Write cursor into `out`.
    out_pos: usize,
    dead: bool,
}

impl Conn {
    fn queue_frame(&mut self, payload: &[u8]) {
        write_frame(&mut self.out, payload);
    }

    fn pending_out(&self) -> usize {
        self.out.len() - self.out_pos
    }
}

/// One decoded-but-not-yet-executed write, waiting in the coalescing
/// group. `conn` indexes the worker's connection table.
struct PendingWrite {
    conn: usize,
    id: u64,
    op: &'static str,
    began: Instant,
}

// ---------------------------------------------------------------------
// Worker.
// ---------------------------------------------------------------------

struct Worker {
    store: Arc<dyn KvStore>,
    opts: NetOptions,
    registry: Arc<MetricsRegistry>,
    shutdown: Arc<AtomicBool>,
    live_conns: Arc<AtomicUsize>,
    incoming: Receiver<TcpStream>,
    conns: Vec<Conn>,

    // Pending coalesced write group.
    group: WriteBatch,
    group_opts: WriteOptions,
    group_members: Vec<PendingWrite>,

    // Metrics (registered once, recorded lock-free).
    requests: Arc<Counter>,
    responses: Arc<Counter>,
    protocol_errors: Arc<Counter>,
    bytes_read: Arc<Counter>,
    bytes_written: Arc<Counter>,
    coalesced_batches: Arc<Counter>,
    coalesced_ops: Arc<Counter>,
    connections: Arc<Gauge>,
    op_latency: HashMap<&'static str, Arc<ConcurrentHistogram>>,
}

impl Worker {
    fn new(
        store: Arc<dyn KvStore>,
        opts: NetOptions,
        registry: Arc<MetricsRegistry>,
        shutdown: Arc<AtomicBool>,
        live_conns: Arc<AtomicUsize>,
        incoming: Receiver<TcpStream>,
    ) -> Self {
        let requests = registry.counter("net.requests");
        let responses = registry.counter("net.responses");
        let protocol_errors = registry.counter("net.protocol_errors");
        let bytes_read = registry.counter("net.bytes_read");
        let bytes_written = registry.counter("net.bytes_written");
        let coalesced_batches = registry.counter("net.coalesced_batches");
        let coalesced_ops = registry.counter("net.coalesced_ops");
        let connections = registry.gauge("net.connections");
        Worker {
            store,
            opts,
            registry,
            shutdown,
            live_conns,
            incoming,
            conns: Vec::new(),
            group: WriteBatch::new(),
            group_opts: WriteOptions::new(),
            group_members: Vec::new(),
            requests,
            responses,
            protocol_errors,
            bytes_read,
            bytes_written,
            coalesced_batches,
            coalesced_ops,
            connections,
            op_latency: HashMap::new(),
        }
    }

    fn run(mut self) {
        while !self.shutdown.load(Ordering::Relaxed) {
            self.adopt_new_conns();
            if self.conns.is_empty() {
                std::thread::sleep(std::time::Duration::from_millis(10));
                continue;
            }
            self.poll_conns();
            self.read_ready();
            self.process_frames();
            self.flush_writes();
            self.reap_dead();
        }
        // Graceful exit: give queued responses (e.g. the shutdown ack)
        // a brief chance to drain before the sockets close.
        for _ in 0..20 {
            self.flush_writes();
            if self.conns.iter().all(|c| c.pending_out() == 0 || c.dead) {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        let remaining = self.conns.len();
        if remaining > 0 {
            self.live_conns.fetch_sub(remaining, Ordering::Relaxed);
            self.connections.sub(remaining as i64);
        }
    }

    fn adopt_new_conns(&mut self) {
        loop {
            match self.incoming.try_recv() {
                Ok(stream) => {
                    self.connections.add(1);
                    self.conns.push(Conn {
                        stream,
                        frames: FrameReader::new(self.opts.max_frame_bytes),
                        sessions: SnapshotSessions::new(),
                        out: Vec::new(),
                        out_pos: 0,
                        dead: false,
                    });
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => break,
            }
        }
    }

    fn poll_conns(&mut self) {
        use std::os::fd::AsRawFd;
        let mut fds: Vec<PollFd> = self
            .conns
            .iter()
            .map(|c| {
                let mut events = POLLIN;
                if c.pending_out() > 0 {
                    events |= POLLOUT;
                }
                PollFd::new(c.stream.as_raw_fd(), events)
            })
            .collect();
        let _ = poll_fds(&mut fds, 50);
    }

    /// Drains every socket that has bytes (readiness was just polled,
    /// but reading everything nonblocking is correct regardless —
    /// `WouldBlock` simply ends a connection's drain).
    fn read_ready(&mut self) {
        let mut chunk = vec![0u8; self.opts.read_buffer_bytes];
        for conn in &mut self.conns {
            if conn.dead {
                continue;
            }
            loop {
                match conn.stream.read(&mut chunk) {
                    Ok(0) => {
                        conn.dead = true;
                        break;
                    }
                    Ok(n) => {
                        self.bytes_read.add(n as u64);
                        conn.frames.feed(&chunk[..n]);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        conn.dead = true;
                        break;
                    }
                }
            }
        }
    }

    /// Decodes and executes all complete frames, coalescing writes.
    fn process_frames(&mut self) {
        for i in 0..self.conns.len() {
            loop {
                let frame = match self.conns[i].frames.next_frame() {
                    Ok(Some(f)) => f,
                    Ok(None) => break,
                    Err(e) => {
                        self.fail_connection(i, &e);
                        break;
                    }
                };
                let (id, req) = match proto::decode_request(&frame) {
                    Ok(decoded) => decoded,
                    Err(e) => {
                        self.fail_connection(i, &e);
                        break;
                    }
                };
                self.requests.inc();
                match req {
                    WireRequest::Shutdown => {
                        self.flush_group();
                        self.respond(i, id, &Response::Done);
                        self.shutdown.store(true, Ordering::Relaxed);
                    }
                    WireRequest::Op(Request::Stats) => {
                        self.flush_group();
                        let began = Instant::now();
                        let text = format!(
                            "{}{}",
                            self.registry.snapshot().to_text(),
                            self.store.stats().to_text()
                        );
                        self.respond(i, id, &Response::Stats(text));
                        self.record_latency("stats", began);
                    }
                    WireRequest::Op(req) if req.is_write() => {
                        self.enqueue_write(i, id, req);
                    }
                    WireRequest::Op(req) => {
                        // Reads and snapshot ops see every write this
                        // connection already sent: flush first.
                        self.flush_group();
                        let name = req.name();
                        let began = Instant::now();
                        let resp = dispatch(self.store.as_ref(), &mut self.conns[i].sessions, req);
                        self.respond(i, id, &resp);
                        self.record_latency(name, began);
                    }
                }
            }
        }
        self.flush_group();
    }

    /// Adds one write request to the coalescing group, flushing first
    /// if the options differ or the group is full.
    fn enqueue_write(&mut self, conn: usize, id: u64, req: Request) {
        let (batch, opts, op) = match req {
            Request::Put { key, value, opts } => {
                (WriteBatch::single_put(&key, &value), opts, "put")
            }
            Request::Delete { key, opts } => (WriteBatch::single_delete(&key), opts, "delete"),
            Request::Write { batch, opts } => (batch, opts, "write"),
            other => unreachable!("enqueue_write on non-write {}", other.name()),
        };
        if let Err(e) = opts.validate() {
            self.respond(conn, id, &Response::Error(WireError::from_error(&e)));
            return;
        }
        if !self.group_members.is_empty()
            && (opts != self.group_opts || self.group.len() + batch.len() > self.opts.coalesce_ops)
        {
            self.flush_group();
        }
        if self.group_members.is_empty() {
            self.group_opts = opts;
        }
        self.group.extend(batch);
        self.group_members.push(PendingWrite {
            conn,
            id,
            op,
            began: Instant::now(),
        });
    }

    /// Applies the pending coalesced group as one `KvStore::write` and
    /// answers every member request.
    fn flush_group(&mut self) {
        if self.group_members.is_empty() {
            return;
        }
        let batch = std::mem::take(&mut self.group);
        let members = std::mem::take(&mut self.group_members);
        self.coalesced_batches.inc();
        self.coalesced_ops.add(batch.len() as u64);
        let result = self.store.write(batch, &self.group_opts);
        let resp = match &result {
            Ok(()) => Response::Done,
            Err(e) => Response::Error(WireError::from_error(e)),
        };
        for m in members {
            self.respond(m.conn, m.id, &resp);
            self.record_latency(m.op, m.began);
        }
    }

    fn respond(&mut self, conn: usize, id: u64, resp: &Response) {
        let payload = proto::encode_response(id, resp);
        self.conns[conn].queue_frame(&payload);
        self.responses.inc();
    }

    fn record_latency(&mut self, op: &'static str, began: Instant) {
        if !self.op_latency.contains_key(op) {
            let hist = self.registry.histogram(&format!("net.op.{op}_ns"));
            self.op_latency.insert(op, hist);
        }
        self.op_latency[op].record(began.elapsed().as_nanos() as u64);
    }

    /// Poisons one connection after a protocol violation: best-effort
    /// error frame, then close. Other connections are unaffected.
    fn fail_connection(&mut self, conn: usize, err: &Error) {
        self.protocol_errors.inc();
        let payload = proto::encode_connection_error(err);
        let c = &mut self.conns[conn];
        c.queue_frame(&payload);
        c.dead = true;
    }

    /// Writes as much queued output as each socket accepts.
    fn flush_writes(&mut self) {
        for conn in &mut self.conns {
            while conn.pending_out() > 0 {
                match conn.stream.write(&conn.out[conn.out_pos..]) {
                    Ok(0) => {
                        conn.dead = true;
                        break;
                    }
                    Ok(n) => {
                        self.bytes_written.add(n as u64);
                        conn.out_pos += n;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        conn.dead = true;
                        break;
                    }
                }
            }
            if conn.out_pos == conn.out.len() {
                conn.out.clear();
                conn.out_pos = 0;
            } else if conn.out_pos > self.opts.write_buffer_bytes {
                // Compact the drained prefix so the buffer doesn't
                // grow monotonically under sustained pipelining.
                conn.out.drain(..conn.out_pos);
                conn.out_pos = 0;
            }
            if conn.pending_out() > self.opts.write_buffer_bytes * SLOW_CONSUMER_MULTIPLE {
                // The peer is not reading its responses; cut it loose
                // rather than buffering without bound.
                conn.dead = true;
            }
        }
    }

    /// Drops closed connections. `flush_writes` runs before this in
    /// every tick, so a connection killed for a protocol violation has
    /// already had one chance to push its final error frame out.
    fn reap_dead(&mut self) {
        let mut i = 0;
        while i < self.conns.len() {
            let c = &self.conns[i];
            if c.dead {
                let _ = c.stream.shutdown(std::net::Shutdown::Both);
                self.conns.swap_remove(i);
                self.live_conns.fetch_sub(1, Ordering::Relaxed);
                self.connections.sub(1);
            } else {
                i += 1;
            }
        }
    }
}
