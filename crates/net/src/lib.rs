//! TCP serving layer for the cLSM store.
//!
//! The paper's cLSM is embedded in-process; this crate puts it behind
//! the process boundary production LSM stores live behind. It has
//! three parts:
//!
//! - **Protocol** ([`frame`], [`proto`]): a length-prefixed, pipelined
//!   binary protocol. Every frame is `[u32 len][u64 request id]
//!   [u8 opcode][body]`; the request/response bodies are
//!   serializations of [`clsm_kv::api::Request`] /
//!   [`clsm_kv::api::Response`], so the wire format cannot drift from
//!   the in-process dispatch surface.
//! - **Server** ([`server`]): a poll(2)-based event loop
//!   (vendored-deps-only, so no `mio`) of N worker threads over
//!   nonblocking sockets. Each worker tick drains every readable
//!   connection, then coalesces the decoded write requests from *all*
//!   of its connections into merged [`clsm_kv::WriteBatch`]es feeding
//!   the `Db::write` group-commit path — the serving layer extends the
//!   paper's write-path batching across connections.
//! - **Client** ([`client`]): a pipelined connection pool and a
//!   [`client::RemoteStore`] that implements [`clsm_kv::KvStore`], so
//!   the workload driver, the history recorder, and `clsm-check` run
//!   unchanged over TCP and every measured latency is client-observed.
//!
//! Configuration for all of it — server, client, load generator,
//! doctor — is one validated [`NetOptions`] builder.

#![warn(missing_docs)]

pub mod client;
pub mod frame;
mod options;
pub mod poll;
pub mod proto;
pub mod server;

pub use client::{Client, RemoteStore};
pub use options::{NetOptions, NetOptionsBuilder};
pub use server::ServerHandle;
