//! The `clsm-client` library: a pipelined connection pool and a
//! [`RemoteStore`] that implements [`KvStore`] over TCP.
//!
//! Each pooled connection has a dedicated reader thread that decodes
//! response frames and wakes the waiting caller by request id, so any
//! number of application threads can keep requests in flight on the
//! same socket — the pipelining the protocol was framed for.
//! `NetOptions::pipeline_depth` bounds in-flight requests per
//! connection; senders block (briefly) when the pipeline is full,
//! which is the client-side analogue of the server's admission
//! control.
//!
//! [`RemoteStore`] makes the process boundary transparent to the rest
//! of the workspace: the workload driver measures client-observed
//! latency, and the PR 5 history recorder wraps it unchanged so
//! `clsm-check` audits what clients actually saw over the wire.
//! Snapshots pin to the connection that created them — snapshot ids
//! are a per-connection namespace on the server.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use clsm_kv::api::{Request, Response};
use clsm_kv::{KvSnapshot, KvStore, Result, ScanRange, WriteBatch, WriteOptions};
use clsm_util::error::Error;

use crate::frame::{write_frame, FrameReader};
use crate::proto;
use crate::server::ServerHandle;
use crate::NetOptions;

/// Cap on entries per scan request; the scan API itself takes a limit,
/// this is just the largest the remote store will request at once.
const MAX_SCAN_LIMIT: usize = u32::MAX as usize;

struct ConnState {
    next_id: u64,
    /// `None` = request sent, response pending.
    waiting: HashMap<u64, Option<Response>>,
    in_flight: usize,
    /// Set once when the connection fails; every current and future
    /// caller gets a clone of this error.
    dead: Option<String>,
}

struct Conn {
    /// Write side; the reader thread owns a `try_clone` of the stream.
    stream: Mutex<TcpStream>,
    state: Mutex<ConnState>,
    cv: Condvar,
    pipeline_depth: usize,
}

impl Conn {
    fn fail(&self, reason: String) {
        let mut st = self.state.lock().unwrap();
        if st.dead.is_none() {
            st.dead = Some(reason);
        }
        self.cv.notify_all();
    }

    fn dead_error(reason: &str) -> Error {
        Error::from_wire(
            clsm_util::error::ErrorKind::Io.code(),
            format!("connection failed: {reason}"),
            true,
        )
    }

    /// Sends `payload` as one frame and blocks until its response
    /// arrives (other threads' responses are delivered independently).
    fn call_payload(&self, id: u64, payload: &[u8]) -> Result<Response> {
        {
            let mut st = self.state.lock().unwrap();
            while st.dead.is_none() && st.in_flight >= self.pipeline_depth {
                st = self.cv.wait(st).unwrap();
            }
            if let Some(reason) = &st.dead {
                return Err(Self::dead_error(reason));
            }
            st.in_flight += 1;
            st.waiting.insert(id, None);
        }

        let mut framed = Vec::with_capacity(payload.len() + 4);
        write_frame(&mut framed, payload);
        let write_result = {
            let mut stream = self.stream.lock().unwrap();
            stream.write_all(&framed)
        };
        if let Err(e) = write_result {
            self.fail(e.to_string());
        }

        let mut st = self.state.lock().unwrap();
        loop {
            if let Some(slot) = st.waiting.get_mut(&id) {
                if let Some(resp) = slot.take() {
                    st.waiting.remove(&id);
                    st.in_flight -= 1;
                    self.cv.notify_all();
                    return Ok(resp);
                }
            }
            if let Some(reason) = &st.dead {
                let reason = reason.clone();
                st.waiting.remove(&id);
                st.in_flight -= 1;
                return Err(Self::dead_error(&reason));
            }
            st = self.cv.wait(st).unwrap();
        }
    }

    fn next_id(&self) -> u64 {
        let mut st = self.state.lock().unwrap();
        st.next_id += 1;
        st.next_id
    }
}

fn reader_loop(conn: &Conn, mut stream: TcpStream, max_frame_bytes: usize, chunk_bytes: usize) {
    let mut frames = FrameReader::new(max_frame_bytes);
    let mut chunk = vec![0u8; chunk_bytes];
    loop {
        let n = match stream.read(&mut chunk) {
            Ok(0) => {
                conn.fail("connection closed by server".to_string());
                return;
            }
            Ok(n) => n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => {
                conn.fail(e.to_string());
                return;
            }
        };
        frames.feed(&chunk[..n]);
        loop {
            let frame = match frames.next_frame() {
                Ok(Some(f)) => f,
                Ok(None) => break,
                Err(e) => {
                    conn.fail(e.to_string());
                    return;
                }
            };
            let (id, resp) = match proto::decode_response(&frame) {
                Ok(decoded) => decoded,
                Err(e) => {
                    conn.fail(e.to_string());
                    return;
                }
            };
            if proto::is_connection_error(id, &resp) {
                let reason = match resp {
                    Response::Error(e) => e.message,
                    _ => unreachable!(),
                };
                conn.fail(reason);
                return;
            }
            let mut st = conn.state.lock().unwrap();
            if let Some(slot) = st.waiting.get_mut(&id) {
                *slot = Some(resp);
                conn.cv.notify_all();
            }
            // An unknown id (caller gave up) is silently dropped.
        }
    }
}

/// A pool of pipelined connections to one `clsm-server`.
pub struct Client {
    conns: Vec<Arc<Conn>>,
    readers: Mutex<Vec<JoinHandle<()>>>,
    next_conn: AtomicUsize,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("connections", &self.conns.len())
            .finish()
    }
}

impl Client {
    /// Opens `opts.connections` connections to `opts.addr`.
    pub fn connect(opts: &NetOptions) -> Result<Client> {
        opts.validate()?;
        let mut conns = Vec::with_capacity(opts.connections);
        let mut readers = Vec::with_capacity(opts.connections);
        for i in 0..opts.connections {
            let stream = TcpStream::connect(&opts.addr)?;
            let _ = stream.set_nodelay(true);
            let read_half = stream.try_clone()?;
            let conn = Arc::new(Conn {
                stream: Mutex::new(stream),
                state: Mutex::new(ConnState {
                    next_id: 0,
                    waiting: HashMap::new(),
                    in_flight: 0,
                    dead: None,
                }),
                cv: Condvar::new(),
                pipeline_depth: opts.pipeline_depth,
            });
            let reader_conn = Arc::clone(&conn);
            let max_frame = opts.max_frame_bytes;
            let chunk = opts.read_buffer_bytes;
            readers.push(
                std::thread::Builder::new()
                    .name(format!("clsm-client-reader-{i}"))
                    .spawn(move || reader_loop(&reader_conn, read_half, max_frame, chunk))
                    .map_err(Error::from)?,
            );
            conns.push(conn);
        }
        Ok(Client {
            conns,
            readers: Mutex::new(readers),
            next_conn: AtomicUsize::new(0),
        })
    }

    /// Number of pooled connections.
    pub fn connections(&self) -> usize {
        self.conns.len()
    }

    fn pick(&self) -> usize {
        self.next_conn.fetch_add(1, Ordering::Relaxed) % self.conns.len()
    }

    /// Issues one request on a round-robin connection.
    pub fn call(&self, req: &Request) -> Result<Response> {
        self.call_on(self.pick(), req)
    }

    /// Issues one request on a specific pooled connection (snapshot
    /// operations must stay on the connection that created the
    /// snapshot).
    pub fn call_on(&self, conn: usize, req: &Request) -> Result<Response> {
        let conn = &self.conns[conn % self.conns.len()];
        let id = conn.next_id();
        conn.call_payload(id, &proto::encode_request(id, req))
    }

    /// Fetches the server's merged stats text (`net.*` plus the
    /// store's own registry).
    pub fn stats_text(&self) -> Result<String> {
        match self.call(&Request::Stats)? {
            Response::Stats(text) => Ok(text),
            Response::Error(e) => Err(e.into_error()),
            other => Err(unexpected("Stats", &other)),
        }
    }

    /// Asks the server to shut down cleanly.
    pub fn shutdown_server(&self) -> Result<()> {
        let conn = &self.conns[0];
        let id = conn.next_id();
        match conn.call_payload(id, &proto::encode_shutdown(id))? {
            Response::Done => Ok(()),
            Response::Error(e) => Err(e.into_error()),
            other => Err(unexpected("Shutdown", &other)),
        }
    }
}

impl Drop for Client {
    fn drop(&mut self) {
        for conn in &self.conns {
            if let Ok(stream) = conn.stream.lock() {
                let _ = stream.shutdown(std::net::Shutdown::Both);
            }
            conn.fail("client closed".to_string());
        }
        if let Ok(mut readers) = self.readers.lock() {
            for r in readers.drain(..) {
                let _ = r.join();
            }
        }
    }
}

fn unexpected(what: &str, got: &Response) -> Error {
    Error::protocol(format!("unexpected response to {what}: {got:?}"))
}

/// Converts a response into the caller's `Result`, mapping wire errors
/// back into typed [`Error`]s.
fn expect_done(resp: Response) -> Result<()> {
    match resp {
        Response::Done => Ok(()),
        Response::Error(e) => Err(e.into_error()),
        other => Err(unexpected("write", &other)),
    }
}

fn expect_value(resp: Response) -> Result<Option<Vec<u8>>> {
    match resp {
        Response::Value(v) => Ok(v),
        Response::Error(e) => Err(e.into_error()),
        other => Err(unexpected("read", &other)),
    }
}

fn expect_entries(resp: Response) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
    match resp {
        Response::Entries(entries) => Ok(entries),
        Response::Error(e) => Err(e.into_error()),
        other => Err(unexpected("scan", &other)),
    }
}

/// A [`KvStore`] whose backing store is on the other side of a TCP
/// connection. May optionally own the in-process [`ServerHandle`] it
/// talks to, which keeps embedded-server setups (tests, the checker
/// SUT, the bench system) alive exactly as long as the store.
pub struct RemoteStore {
    client: Arc<Client>,
    sequence: AtomicU64,
    /// Held only to tie an embedded server's lifetime to the store.
    server: Option<ServerHandle>,
}

impl std::fmt::Debug for RemoteStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteStore")
            .field("connections", &self.client.connections())
            .field("embedded_server", &self.server.is_some())
            .finish()
    }
}

impl RemoteStore {
    /// Connects to an already running server.
    pub fn connect(opts: &NetOptions) -> Result<RemoteStore> {
        Ok(RemoteStore {
            client: Arc::new(Client::connect(opts)?),
            sequence: AtomicU64::new(0),
            server: None,
        })
    }

    /// Serves `store` on a loopback port and connects to it; the
    /// server lives exactly as long as the returned `RemoteStore`.
    pub fn with_embedded_server(store: Arc<dyn KvStore>, opts: &NetOptions) -> Result<RemoteStore> {
        let server = crate::server::serve(store, opts)?;
        let mut connect_opts = opts.clone();
        connect_opts.addr = server.addr().to_string();
        Ok(RemoteStore {
            client: Arc::new(Client::connect(&connect_opts)?),
            sequence: AtomicU64::new(0),
            server: Some(server),
        })
    }

    /// The underlying connection pool.
    pub fn client(&self) -> &Client {
        &self.client
    }

    /// The embedded server handle, when this store owns one.
    pub fn server(&self) -> Option<&ServerHandle> {
        self.server.as_ref()
    }
}

impl KvStore for RemoteStore {
    fn write(&self, batch: WriteBatch, opts: &WriteOptions) -> Result<()> {
        expect_done(self.client.call(&Request::Write { batch, opts: *opts })?)
    }

    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        expect_value(self.client.call(&Request::Get { key: key.to_vec() })?)
    }

    fn snapshot(&self) -> Result<Box<dyn KvSnapshot>> {
        // Pin the snapshot to one connection: ids are a per-connection
        // namespace on the server. Spread creators across the pool.
        let conn =
            (self.sequence.fetch_add(1, Ordering::Relaxed) as usize) % self.client.connections();
        match self.client.call_on(conn, &Request::SnapshotCreate)? {
            Response::SnapshotId(id) => Ok(Box::new(RemoteSnapshot {
                client: Arc::clone(&self.client),
                conn,
                id,
            })),
            Response::Error(e) => Err(e.into_error()),
            other => Err(unexpected("SnapshotCreate", &other)),
        }
    }

    fn scan(&self, range: ScanRange, limit: usize) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        expect_entries(self.client.call(&Request::Scan {
            range,
            limit: limit.min(MAX_SCAN_LIMIT) as u32,
        })?)
    }

    fn put_if_absent(&self, key: &[u8], value: &[u8]) -> Result<bool> {
        match self.client.call(&Request::PutIfAbsent {
            key: key.to_vec(),
            value: value.to_vec(),
        })? {
            Response::Applied(applied) => Ok(applied),
            Response::Error(e) => Err(e.into_error()),
            other => Err(unexpected("PutIfAbsent", &other)),
        }
    }

    fn quiesce(&self) -> Result<()> {
        // Flush/compaction scheduling is the server's concern; from the
        // client there is nothing to wait on beyond responses, which
        // `call` already does.
        Ok(())
    }

    fn name(&self) -> &'static str {
        "cLSM-net"
    }
}

/// A server-side snapshot reached through the connection that created
/// it. Dropping it releases the server-side handle (best effort).
struct RemoteSnapshot {
    client: Arc<Client>,
    conn: usize,
    id: u64,
}

impl KvSnapshot for RemoteSnapshot {
    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        expect_value(self.client.call_on(
            self.conn,
            &Request::SnapshotGet {
                snapshot: self.id,
                key: key.to_vec(),
            },
        )?)
    }

    fn scan(&self, range: ScanRange, limit: usize) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        expect_entries(self.client.call_on(
            self.conn,
            &Request::SnapshotScan {
                snapshot: self.id,
                range,
                limit: limit.min(MAX_SCAN_LIMIT) as u32,
            },
        )?)
    }
}

impl Drop for RemoteSnapshot {
    fn drop(&mut self) {
        let _ = self
            .client
            .call_on(self.conn, &Request::SnapshotRelease { snapshot: self.id });
    }
}
