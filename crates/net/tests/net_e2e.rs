//! End-to-end tests over real loopback sockets: a cLSM store behind
//! the server event loop, exercised through the pipelined client.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use clsm::{Db, Options};
use clsm_kv::api::Request;
use clsm_kv::{KvStore, ScanRange, WriteBatch, WriteOptions};
use clsm_net::{server, NetOptions, RemoteStore};
use clsm_util::error::ErrorKind;

fn tempdir(name: &str) -> std::path::PathBuf {
    let p = std::env::temp_dir().join(format!(
        "clsm-net-{}-{}-{}",
        std::process::id(),
        name,
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::create_dir_all(&p).unwrap();
    p
}

fn loopback_opts() -> NetOptions {
    NetOptions::builder()
        .addr("127.0.0.1:0")
        .workers(2)
        .connections(2)
        .build()
        .unwrap()
}

fn remote_over_db(dir: &std::path::Path) -> RemoteStore {
    let db: Arc<dyn KvStore> = Arc::new(Db::open(dir, Options::small_for_tests()).unwrap());
    RemoteStore::with_embedded_server(db, &loopback_opts()).unwrap()
}

#[test]
fn every_operation_works_over_tcp() {
    let dir = tempdir("ops");
    {
        let store = remote_over_db(&dir);

        // Point ops.
        store.put(b"a", b"1").unwrap();
        assert_eq!(store.get(b"a").unwrap(), Some(b"1".to_vec()));
        assert_eq!(store.get(b"missing").unwrap(), None);
        store.delete(b"a").unwrap();
        assert_eq!(store.get(b"a").unwrap(), None);

        // Atomic batch through the group-commit path.
        let mut batch = WriteBatch::new();
        batch.put(b"k1", b"v1");
        batch.put(b"k2", b"v2");
        batch.put(b"k3", b"v3");
        batch.delete(b"k2");
        store.write(batch, &WriteOptions::new()).unwrap();
        assert_eq!(
            store.scan(ScanRange::all(), 100).unwrap(),
            vec![
                (b"k1".to_vec(), b"v1".to_vec()),
                (b"k3".to_vec(), b"v3".to_vec()),
            ]
        );

        // Conditional put.
        assert!(store.put_if_absent(b"pia", b"first").unwrap());
        assert!(!store.put_if_absent(b"pia", b"second").unwrap());
        assert_eq!(store.get(b"pia").unwrap(), Some(b"first".to_vec()));

        // Snapshot isolation across the wire.
        let snap = store.snapshot().unwrap();
        store.put(b"k1", b"changed").unwrap();
        assert_eq!(snap.get(b"k1").unwrap(), Some(b"v1".to_vec()));
        assert_eq!(store.get(b"k1").unwrap(), Some(b"changed".to_vec()));
        let snap_scan = snap
            .scan(ScanRange::new(b"k1".to_vec()..b"k2".to_vec()), 10)
            .unwrap();
        assert_eq!(snap_scan, vec![(b"k1".to_vec(), b"v1".to_vec())]);
        drop(snap);

        // Durable write options cross the wire.
        store
            .write(
                WriteBatch::single_put(b"durable", b"yes"),
                &WriteOptions::durable(),
            )
            .unwrap();
        assert_eq!(store.get(b"durable").unwrap(), Some(b"yes".to_vec()));
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn pipelined_threads_share_the_pool() {
    let dir = tempdir("pipeline");
    {
        let store = Arc::new(remote_over_db(&dir));
        let mut handles = Vec::new();
        for t in 0..4u32 {
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                for i in 0..100u32 {
                    let key = format!("t{t}-k{i}");
                    store.put(key.as_bytes(), &i.to_le_bytes()).unwrap();
                    assert_eq!(
                        store.get(key.as_bytes()).unwrap(),
                        Some(i.to_le_bytes().to_vec()),
                        "read-your-writes for {key}"
                    );
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let all = store.scan(ScanRange::all(), 1000).unwrap();
        assert_eq!(all.len(), 400);
        // Coalescing happened (or at least the counters exist): the
        // stats text must expose the net.* registry.
        let stats = store.client().stats_text().unwrap();
        assert!(stats.contains("net.requests"), "{stats}");
        assert!(stats.contains("net.coalesced_batches"), "{stats}");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn store_errors_cross_as_typed_codes() {
    let dir = tempdir("typed-errors");
    {
        let store = remote_over_db(&dir);

        // Contradictory write options are rejected server-side with the
        // InvalidArgument kind intact.
        let err = store
            .write(
                WriteBatch::single_put(b"k", b"v"),
                &WriteOptions {
                    sync: true,
                    disable_wal: true,
                },
            )
            .unwrap_err();
        assert_eq!(err.kind(), ErrorKind::InvalidArgument, "{err}");
        assert!(!err.is_retryable());

        // Unknown snapshot ids are a typed error, not a hang or panic.
        let resp = store
            .client()
            .call(&Request::SnapshotGet {
                snapshot: 12345,
                key: b"k".to_vec(),
            })
            .unwrap();
        match resp {
            clsm_kv::api::Response::Error(e) => {
                assert_eq!(e.code, ErrorKind::InvalidArgument.code());
                assert!(e.message.contains("unknown snapshot"), "{}", e.message);
            }
            other => panic!("expected error, got {other:?}"),
        }

        // RMW needs a closure and cannot cross the wire: the default
        // trait impl reports InvalidArgument for the remote store.
        let err = store
            .read_modify_write(b"k", &mut |_| clsm_kv::RmwDecision::Abort)
            .unwrap_err();
        assert_eq!(err.kind(), ErrorKind::InvalidArgument);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The satellite requirement: a poisoned connection fails closed and
/// never corrupts a neighboring connection on the same server.
#[test]
fn protocol_garbage_poisons_only_its_own_connection() {
    let dir = tempdir("poison");
    {
        let db: Arc<dyn KvStore> = Arc::new(Db::open(&dir, Options::small_for_tests()).unwrap());
        let handle = server::serve(db, &loopback_opts()).unwrap();
        let addr = handle.addr();

        let connect = |addr: std::net::SocketAddr| {
            let mut opts = loopback_opts();
            opts.addr = addr.to_string();
            RemoteStore::connect(&opts).unwrap()
        };

        // A healthy neighbor, connected first.
        let neighbor = connect(addr);
        neighbor.put(b"before", b"1").unwrap();

        // Poison attempt 1: hostile length prefix.
        let mut evil = TcpStream::connect(addr).unwrap();
        evil.write_all(&u32::MAX.to_le_bytes()).unwrap();
        let mut buf = Vec::new();
        // Server answers with a connection-error frame and closes; the
        // read ends with EOF either way.
        let _ = evil.read_to_end(&mut buf);
        if !buf.is_empty() {
            let mut reader = clsm_net::frame::FrameReader::new(1 << 20);
            reader.feed(&buf);
            let frame = reader.next_frame().unwrap().expect("error frame");
            let (id, resp) = clsm_net::proto::decode_response(&frame).unwrap();
            assert!(clsm_net::proto::is_connection_error(id, &resp));
        }

        // Poison attempt 2: valid frame, garbage opcode.
        let mut evil2 = TcpStream::connect(addr).unwrap();
        let mut payload = Vec::new();
        payload.extend_from_slice(&7u64.to_le_bytes());
        payload.push(0xEE);
        let mut framed = Vec::new();
        clsm_net::frame::write_frame(&mut framed, &payload);
        evil2.write_all(&framed).unwrap();
        let mut buf2 = Vec::new();
        let _ = evil2.read_to_end(&mut buf2);

        // The neighbor is entirely unaffected, before and after.
        assert_eq!(neighbor.get(b"before").unwrap(), Some(b"1".to_vec()));
        neighbor.put(b"after", b"2").unwrap();
        assert_eq!(neighbor.get(b"after").unwrap(), Some(b"2".to_vec()));

        // And a fresh connection still works.
        let late = connect(addr);
        assert_eq!(late.get(b"after").unwrap(), Some(b"2".to_vec()));

        let stats = neighbor.client().stats_text().unwrap();
        assert!(
            stats.contains("net.protocol_errors"),
            "protocol errors should be counted: {stats}"
        );
        handle.shutdown();
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn shutdown_opcode_stops_the_server() {
    let dir = tempdir("shutdown");
    {
        let db: Arc<dyn KvStore> = Arc::new(Db::open(&dir, Options::small_for_tests()).unwrap());
        let handle = server::serve(db, &loopback_opts()).unwrap();
        let mut opts = loopback_opts();
        opts.addr = handle.addr().to_string();
        let store = RemoteStore::connect(&opts).unwrap();
        store.put(b"k", b"v").unwrap();

        store.client().shutdown_server().unwrap();
        // wait() returns because the opcode set the shutdown flag.
        handle.wait();

        // The connection is now dead: further calls error rather than
        // hang.
        assert!(store.get(b"k").is_err());
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn recorded_histories_capture_client_observed_ops() {
    use clsm_kv::record::RecordingSession;

    let dir = tempdir("recorded");
    {
        let store: Arc<dyn KvStore> = Arc::new(remote_over_db(&dir));
        let session = RecordingSession::new(Arc::clone(&store));
        let mut handles = Vec::new();
        for t in 0..4usize {
            let mut rec = session.recorder();
            handles.push(std::thread::spawn(move || {
                let key = format!("rk{t}");
                rec.put(key.as_bytes(), b"v1").unwrap();
                assert_eq!(rec.get(key.as_bytes()).unwrap(), Some(b"v1".to_vec()));
                rec.delete(key.as_bytes()).unwrap();
                assert_eq!(rec.get(key.as_bytes()).unwrap(), None);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let events = session.take_events();
        // 4 threads x 4 ops, one timed event each.
        assert_eq!(events.len(), 4 * 4);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
