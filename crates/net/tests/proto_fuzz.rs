//! Protocol robustness properties: the frame and body decoders face an
//! untrusted byte stream and must fail closed — a typed protocol
//! error, never a panic, never a bogus success — under truncation,
//! bit garbage, hostile length prefixes, and arbitrary read chunking.

use clsm_kv::api::{Request, Response, WireError};
use clsm_kv::{ScanRange, WriteBatch, WriteOptions};
use clsm_net::frame::{write_frame, FrameReader, MIN_FRAME_BYTES};
use clsm_net::proto;
use proptest::prelude::*;

fn bytes() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(any::<u8>(), 0..64)
}

fn text() -> impl Strategy<Value = String> {
    prop::collection::vec(any::<u8>(), 0..64).prop_map(|b| String::from_utf8_lossy(&b).into_owned())
}

fn arb_opts() -> impl Strategy<Value = WriteOptions> {
    (any::<bool>(), any::<bool>()).prop_map(|(sync, disable_wal)| WriteOptions {
        sync: sync && !disable_wal,
        disable_wal,
    })
}

fn arb_bound() -> impl Strategy<Value = std::ops::Bound<Vec<u8>>> {
    prop_oneof![
        Just(std::ops::Bound::Unbounded),
        bytes().prop_map(std::ops::Bound::Included),
        bytes().prop_map(std::ops::Bound::Excluded),
    ]
}

fn arb_range() -> impl Strategy<Value = ScanRange> {
    (arb_bound(), arb_bound()).prop_map(|(start, end)| ScanRange { start, end })
}

/// Strategy: an arbitrary request (keys/values up to 64 bytes, small
/// batches — shapes, not sizes, are what decoding cares about).
fn arb_request() -> impl Strategy<Value = Request> {
    let maybe_value = (any::<bool>(), bytes()).prop_map(|(some, v)| some.then_some(v));
    prop_oneof![
        bytes().prop_map(|key| Request::Get { key }),
        (bytes(), bytes(), arb_opts()).prop_map(|(key, value, opts)| Request::Put {
            key,
            value,
            opts
        }),
        (bytes(), arb_opts()).prop_map(|(key, opts)| Request::Delete { key, opts }),
        (
            prop::collection::vec((bytes(), maybe_value), 0..8),
            arb_opts()
        )
            .prop_map(|(ops, opts)| Request::Write {
                batch: ops.into_iter().collect::<WriteBatch>(),
                opts,
            }),
        (bytes(), bytes()).prop_map(|(key, value)| Request::PutIfAbsent { key, value }),
        (arb_range(), any::<u32>()).prop_map(|(range, limit)| Request::Scan { range, limit }),
        Just(Request::SnapshotCreate),
        (any::<u64>(), bytes()).prop_map(|(snapshot, key)| Request::SnapshotGet { snapshot, key }),
        (any::<u64>(), arb_range(), any::<u32>()).prop_map(|(snapshot, range, limit)| {
            Request::SnapshotScan {
                snapshot,
                range,
                limit,
            }
        }),
        any::<u64>().prop_map(|snapshot| Request::SnapshotRelease { snapshot }),
        Just(Request::Stats),
    ]
}

fn arb_response() -> impl Strategy<Value = Response> {
    let maybe_value = (any::<bool>(), bytes()).prop_map(|(some, v)| some.then_some(v));
    prop_oneof![
        Just(Response::Done),
        maybe_value.prop_map(Response::Value),
        any::<bool>().prop_map(Response::Applied),
        prop::collection::vec((bytes(), bytes()), 0..8).prop_map(Response::Entries),
        any::<u64>().prop_map(Response::SnapshotId),
        text().prop_map(Response::Stats),
        (any::<u16>(), text(), any::<bool>()).prop_map(|(code, message, retryable)| {
            Response::Error(WireError {
                code,
                message,
                retryable,
            })
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    // Requests survive encode → frame → arbitrary chunking → decode.
    #[test]
    fn request_round_trips_through_chunked_frames(
        id in any::<u64>(),
        req in arb_request(),
        cuts in prop::collection::vec(1usize..64, 0..8),
    ) {
        let payload = proto::encode_request(id, &req);
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload);

        // Split the wire bytes at pseudo-random points and feed the
        // chunks one at a time.
        let mut reader = FrameReader::new(1 << 24);
        let mut rest: &[u8] = &wire;
        for cut in cuts {
            let cut = cut.min(rest.len());
            let (head, tail) = rest.split_at(cut);
            reader.feed(head);
            rest = tail;
        }
        reader.feed(rest);

        let frame = reader.next_frame().unwrap().expect("one whole frame fed");
        let (got_id, got) = proto::decode_request(&frame).unwrap();
        prop_assert_eq!(got_id, id);
        prop_assert_eq!(got, proto::WireRequest::Op(req));
        prop_assert_eq!(reader.next_frame().unwrap(), None);
    }

    #[test]
    fn response_round_trips(id in any::<u64>(), resp in arb_response()) {
        let payload = proto::encode_response(id, &resp);
        let (got_id, got) = proto::decode_response(&payload).unwrap();
        prop_assert_eq!(got_id, id);
        prop_assert_eq!(got, resp);
    }

    // Truncating an encoded request anywhere yields an error, never a
    // panic and never a silent success.
    #[test]
    fn truncated_requests_fail_closed(
        req in arb_request(),
        frac_pm in 0u32..1000,
    ) {
        let payload = proto::encode_request(1, &req);
        let cut = payload.len() * (frac_pm as usize) / 1000;
        if cut < payload.len() {
            let err = proto::decode_request(&payload[..cut]).unwrap_err();
            prop_assert_eq!(err.kind(), clsm_util::error::ErrorKind::Protocol);
        }
    }

    // Arbitrary garbage never panics the request decoder; it either
    // errors or (if it happens to parse) round-trips consistently.
    #[test]
    fn garbage_never_panics_request_decoder(bytes in prop::collection::vec(any::<u8>(), 0..128)) {
        if let Ok((id, proto::WireRequest::Op(req))) = proto::decode_request(&bytes) {
            // Accidental parses must re-encode to something decodable.
            let re = proto::encode_request(id, &req);
            let (id2, got) = proto::decode_request(&re).unwrap();
            prop_assert_eq!(id2, id);
            prop_assert_eq!(got, proto::WireRequest::Op(req));
        }
    }

    #[test]
    fn garbage_never_panics_response_decoder(bytes in prop::collection::vec(any::<u8>(), 0..128)) {
        let _ = proto::decode_response(&bytes);
    }

    // Hostile length prefixes (oversized or undersized) poison the
    // stream immediately, whatever bytes follow. Every arm of the
    // strategy is outside [MIN_FRAME_BYTES, max_frame] by construction.
    #[test]
    fn hostile_length_prefixes_fail_closed(
        len in prop_oneof![
            Just(0u32),
            1u32..(MIN_FRAME_BYTES as u32),
            (1u32 << 20)..u32::MAX,
        ],
        tail in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let max_frame = 1 << 16;
        let mut reader = FrameReader::new(max_frame);
        reader.feed(&len.to_le_bytes());
        reader.feed(&tail);
        let err = reader.next_frame().unwrap_err();
        prop_assert_eq!(err.kind(), clsm_util::error::ErrorKind::Protocol);
        // Poisoned for good.
        prop_assert!(reader.next_frame().is_err());
    }

    // Flipping any single byte of a valid frame payload never panics
    // the decoder.
    #[test]
    fn single_byte_corruption_never_panics(
        req in arb_request(),
        pos_pm in 0u32..1000,
        xor in 1u8..=255,
    ) {
        let mut payload = proto::encode_request(7, &req);
        if !payload.is_empty() {
            let pos = payload.len() * (pos_pm as usize) / 1000 % payload.len();
            payload[pos] ^= xor;
            let _ = proto::decode_request(&payload);
        }
    }
}
