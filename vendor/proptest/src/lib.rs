//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest's API this workspace uses —
//! `proptest!`, `prop_oneof!`, `prop_assert*!`, `Just`, `any`,
//! `prop::collection::vec`, `prop::sample::{select, Index}`, integer
//! ranges and tuples as strategies, `.prop_map`, and
//! `ProptestConfig::with_cases` — as straightforward randomized
//! testing.
//!
//! Differences from real proptest: no shrinking (a failing case prints
//! its seed and inputs via the panic message instead of a minimized
//! counterexample), and generation is driven by a fixed deterministic
//! seed sequence so failures reproduce across runs.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Test-runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic generator driving value production (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The generator for case number `case` of a named test.
    pub fn for_case(test_name: &str, case: u64) -> TestRng {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            state: h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// A generator of random values of one type.
///
/// Object-safe so heterogeneous strategy lists (`prop_oneof!`) can be
/// boxed.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Boxes the strategy (`prop_oneof!` plumbing).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A heap-allocated strategy trait object.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self { rng.next_u64() as $t }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy for any value of `T` (see [`any`]).
#[derive(Debug)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for Any<T> {}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`: uniform over its value space.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128) - (self.start as u128);
                (self.start as u128 + (rng.next_u64() as u128) % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128) - (lo as u128) + 1;
                (lo as u128 + (rng.next_u64() as u128) % span) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
}

/// Weighted union of same-typed strategies (`prop_oneof!` backend).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Builds a union; weights must sum to a nonzero total.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        let total = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs a positive total weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.sample(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights covered above")
    }
}

/// The `prop::` namespace mirror.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::Range;

        /// Strategy for `Vec<S::Value>` with length drawn from `len`.
        #[derive(Clone)]
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        /// `vec(element, 0..8)`: vectors of `element` values.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            assert!(len.start < len.end, "empty length range");
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.len.end - self.len.start) as u64;
                let n = self.len.start + rng.below(span) as usize;
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }
    }

    /// Sampling helpers.
    pub mod sample {
        use super::super::{Arbitrary, Strategy, TestRng};

        /// Strategy choosing uniformly from a fixed list.
        #[derive(Clone)]
        pub struct Select<T: Clone> {
            items: Vec<T>,
        }

        /// `select(vec![...])`: one of the given values.
        pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
            assert!(!items.is_empty(), "select over empty list");
            Select { items }
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn sample(&self, rng: &mut TestRng) -> T {
                self.items[rng.below(self.items.len() as u64) as usize].clone()
            }
        }

        /// An abstract index into collections of then-unknown length.
        #[derive(Debug, Clone, Copy)]
        pub struct Index(u64);

        impl Index {
            /// Resolves to a concrete index below `len` (len > 0).
            pub fn index(&self, len: usize) -> usize {
                assert!(len > 0, "Index::index on empty collection");
                (self.0 % len as u64) as usize
            }
        }

        impl Arbitrary for Index {
            fn arbitrary(rng: &mut TestRng) -> Self {
                Index(rng.next_u64())
            }
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use super::prop;
    pub use super::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Boxes a strategy, inferring the value type (macro plumbing).
pub fn boxed_strategy<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
    Box::new(s)
}

/// Renders sampled inputs for failure messages.
pub fn describe_case<T: fmt::Debug>(name: &str, value: &T) -> String {
    format!("  {name} = {value:?}")
}

/// Asserts a condition inside a property (panics with context).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Weighted or unweighted choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::boxed_strategy($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strategy),+]
    };
}

/// Defines property tests: each `#[test] fn name(arg in strategy, ...)`
/// runs `cases` times with freshly sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr)
        $(
            #[test]
            fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases as u64 {
                    let mut rng = $crate::TestRng::for_case(stringify!($name), case);
                    $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)+
                    // Describe inputs up front: the body takes the args
                    // by move, so they are gone by the time a panic
                    // unwinds out.
                    let mut case_desc = String::new();
                    $(
                        case_desc.push_str(&$crate::describe_case(stringify!($arg), &$arg));
                        case_desc.push('\n');
                    )+
                    let run = move || -> () { $body };
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(run));
                    if let Err(panic) = outcome {
                        eprintln!(
                            "proptest case {case} of {} failed; inputs:\n{case_desc}",
                            stringify!($name)
                        );
                        std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn union_respects_type() {
        let s = prop_oneof![2 => Just(1u8), 1 => Just(2u8)];
        let mut rng = super::TestRng::for_case("union", 0);
        let mut saw = [false; 3];
        for _ in 0..100 {
            saw[super::Strategy::sample(&s, &mut rng) as usize] = true;
        }
        assert!(saw[1] && saw[2]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn vectors_have_bounded_len(v in prop::collection::vec(any::<u8>(), 0..24)) {
            prop_assert!(v.len() < 24);
        }

        #[test]
        fn tuples_and_maps_compose(
            pair in (0u8..12, prop::collection::vec(any::<u8>(), 1..8)).prop_map(|(a, b)| (a, b)),
            pick in prop::sample::select(vec![b"a".to_vec(), b"b".to_vec()]),
            ts in 0u64..120,
        ) {
            prop_assert!(pair.0 < 12);
            prop_assert!(!pair.1.is_empty() && pair.1.len() < 8);
            prop_assert!(pick == b"a".to_vec() || pick == b"b".to_vec());
            prop_assert!(ts < 120);
        }
    }
}
