//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds in environments with no access to crates.io,
//! so external dependencies are vendored as minimal, API-compatible
//! implementations. This crate covers exactly the `rand 0.9` surface
//! the workspace uses: [`Rng`] (`random`, `random_range`,
//! `random_bool`), [`SeedableRng::seed_from_u64`], and
//! [`rngs::StdRng`].
//!
//! `StdRng` is xoshiro256++ seeded via SplitMix64 — deterministic for a
//! given seed, statistically solid for workload generation, and *not*
//! cryptographically secure (neither is anything this repo does with
//! it).

use std::ops::{Bound, RangeBounds};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be sampled uniformly from their full value range.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Integers that can be drawn uniformly from a sub-range.
pub trait SampleUniform: Copy {
    /// Converts to the widest unsigned representation.
    fn to_u128(self) -> u128;
    /// Converts back from the widest unsigned representation.
    fn from_u128(v: u128) -> Self;
    /// Largest representable value (used for unbounded upper ends).
    const MAX: Self;
    /// Smallest representable value.
    const MIN: Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn to_u128(self) -> u128 { self as u128 }
            fn from_u128(v: u128) -> Self { v as $t }
            const MAX: Self = <$t>::MAX;
            const MIN: Self = <$t>::MIN;
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize);

/// User-facing random-value methods (blanket-implemented over
/// [`RngCore`], like `rand 0.9`'s `Rng`).
pub trait Rng: RngCore {
    /// Draws a value uniformly over the type's whole range (`[0, 1)`
    /// for floats).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`. Panics on empty ranges.
    fn random_range<T: SampleUniform, B: RangeBounds<T>>(&mut self, range: B) -> T {
        let low = match range.start_bound() {
            Bound::Included(&v) => v.to_u128(),
            Bound::Excluded(&v) => v.to_u128() + 1,
            Bound::Unbounded => T::MIN.to_u128(),
        };
        let high = match range.end_bound() {
            Bound::Included(&v) => v.to_u128(),
            Bound::Excluded(&v) => v
                .to_u128()
                .checked_sub(1)
                .expect("cannot sample from empty range"),
            Bound::Unbounded => T::MAX.to_u128(),
        };
        assert!(low <= high, "cannot sample from empty range");
        let span = high - low + 1;
        if span == 0 {
            // Whole u128 domain: every draw is in range.
            return T::from_u128(u128::sample(self));
        }
        // Modulo sampling; the bias is ≤ span / 2^128 and irrelevant for
        // workload generation and tests.
        T::from_u128(low + u128::sample(self) % span)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.random_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.random_range(3usize..=5);
            assert!((3..=5).contains(&w));
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn uniform_covers_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 16];
        for _ in 0..1000 {
            seen[rng.random_range(0usize..16)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
    }
}
