//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API subset this workspace's benches use —
//! `criterion_group!`/`criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function`/`bench_with_input`, `Bencher::iter`/`iter_batched`,
//! `Throughput`, `BatchSize`, `BenchmarkId` — backed by plain
//! wall-clock timing instead of criterion's statistical machinery.
//!
//! Each benchmark is warmed up briefly, then timed over a fixed number
//! of samples; the mean per-iteration time (and derived throughput, if
//! set) is printed. `cargo bench -- --test` runs every benchmark body
//! exactly once, as upstream criterion does, so CI smoke runs stay
//! fast.

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity function.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How much work one pass of the benchmark body represents.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The body processes this many logical elements.
    Elements(u64),
    /// The body processes this many bytes.
    Bytes(u64),
}

/// How batches are sized for [`Bencher::iter_batched`]. The stub runs
/// one setup per timed call regardless, so variants only document
/// intent.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Setup output is small; batch freely.
    SmallInput,
    /// Setup output is large; keep batches small.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// A benchmark's display name, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` form.
    pub fn new<P: fmt::Display>(name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Parameter-only form (grouped benches).
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Runs benchmark bodies and records timing.
pub struct Bencher<'a> {
    mode: Mode,
    samples: u64,
    result: &'a mut Option<Duration>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Mode {
    /// `--test`: run the body once, skip timing.
    TestOnce,
    /// Normal: warm up then time.
    Measure,
}

impl Bencher<'_> {
    /// Times `routine`, called repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.mode == Mode::TestOnce {
            black_box(routine());
            return;
        }
        // Warm-up also sizes the batch so cheap bodies aren't dominated
        // by clock reads.
        let mut batch = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            if start.elapsed() >= Duration::from_micros(200) || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            total += start.elapsed();
            iters += batch;
        }
        *self.result = Some(total / iters.max(1) as u32);
    }

    /// Times `routine` over fresh inputs built by `setup` (setup time
    /// excluded).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.mode == Mode::TestOnce {
            black_box(routine(setup()));
            return;
        }
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
            iters += 1;
        }
        *self.result = Some(total / iters.max(1) as u32);
    }
}

/// A named set of related benchmarks sharing throughput/sample config.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    throughput: Option<Throughput>,
    samples: u64,
}

impl BenchmarkGroup<'_> {
    /// Declares the work per body pass, for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Sets the number of timed samples.
    pub fn sample_size(&mut self, n: usize) {
        self.samples = n.max(1) as u64;
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<I: Into<BenchmarkId>, F>(&mut self, id: I, mut f: F)
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = id.into();
        let mut result = None;
        let mut bencher = Bencher {
            mode: self.criterion.mode,
            samples: self.samples,
            result: &mut result,
        };
        f(&mut bencher);
        self.criterion
            .report(&self.name, &id.id, self.throughput, result);
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: Into<BenchmarkId>, P: ?Sized, F>(
        &mut self,
        id: I,
        input: &P,
        mut f: F,
    ) where
        F: FnMut(&mut Bencher<'_>, &P),
    {
        self.bench_function(id, |b| f(b, input));
    }

    /// Ends the group (upstream flushes reports here; the stub reports
    /// eagerly).
    pub fn finish(self) {}
}

/// Benchmark harness entry point.
pub struct Criterion {
    mode: Mode,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- --test` asks for a single correctness pass;
        // cargo itself also appends `--bench`, which we ignore.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            mode: if test_mode {
                Mode::TestOnce
            } else {
                Mode::Measure
            },
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            criterion: self,
            throughput: None,
            samples: 20,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F)
    where
        F: FnMut(&mut Bencher<'_>),
    {
        self.benchmark_group(name).bench_function("default", f);
    }

    fn report(
        &self,
        group: &str,
        bench: &str,
        throughput: Option<Throughput>,
        mean: Option<Duration>,
    ) {
        match (self.mode, mean) {
            (Mode::TestOnce, _) => println!("test {group}/{bench} ... ok"),
            (Mode::Measure, Some(mean)) => {
                let ns = mean.as_nanos().max(1);
                let rate = match throughput {
                    Some(Throughput::Elements(n)) => {
                        format!("  {:.2} Melem/s", n as f64 * 1e3 / ns as f64)
                    }
                    Some(Throughput::Bytes(n)) => {
                        format!("  {:.2} MiB/s", n as f64 * 1e9 / (ns as f64 * 1048576.0))
                    }
                    None => String::new(),
                };
                println!("{group}/{bench}: {ns} ns/iter{rate}");
            }
            (Mode::Measure, None) => println!("{group}/{bench}: no measurement"),
        }
    }
}

/// Bundles benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_measure_and_report() {
        let mut c = Criterion {
            mode: Mode::Measure,
        };
        let mut g = c.benchmark_group("demo");
        g.throughput(Throughput::Elements(1));
        g.sample_size(3);
        let mut ran = 0u64;
        g.bench_function("count", |b| b.iter(|| ran += 1));
        g.bench_with_input(BenchmarkId::new("param", 4), &4u64, |b, &n| {
            b.iter_batched(|| n, |v| v * 2, BatchSize::SmallInput)
        });
        g.finish();
        assert!(ran > 0);
    }

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion {
            mode: Mode::TestOnce,
        };
        let mut runs = 0u64;
        c.bench_function("once", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
    }
}
