//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s ergonomics:
//! `lock()`/`read()`/`write()` return guards directly (poisoning is
//! swallowed — a panic while holding a lock does not poison it for
//! everyone else, matching parking_lot semantics), and
//! [`Condvar::wait_for`] takes `&mut MutexGuard` instead of consuming
//! it.
//!
//! Performance differs from the real parking_lot (std mutexes are
//! futex-based on Linux and close enough for this workspace's locks,
//! none of which sit on the paper's hot paths — those use the custom
//! primitives in `clsm-util`).

use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::Duration;

/// A mutual-exclusion lock (std-backed, poison-free API).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard of a [`Mutex`]. Holds an `Option` internally so
/// [`Condvar::wait_for`] can temporarily take the std guard out.
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable pairing with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Blocks on the guard's mutex until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard taken during wait");
        let inner = self
            .inner
            .wait(inner)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard taken during wait");
        let (inner, result) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }
}

/// A reader-writer lock (std-backed, poison-free API).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard of an [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard of an [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(r.timed_out());
    }

    #[test]
    fn condvar_notify_wakes_waiter() {
        let m = Arc::new(Mutex::new(false));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
        let h = std::thread::spawn(move || {
            let mut g = m2.lock();
            while !*g {
                cv2.wait_for(&mut g, Duration::from_millis(50));
            }
        });
        std::thread::sleep(Duration::from_millis(20));
        *m.lock() = true;
        cv.notify_all();
        h.join().unwrap();
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(5);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 10);
        }
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(41));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 41);
    }
}
