//! Quickstart: open a cLSM database, write, read, scan, and RMW.
//!
//! Run with: `cargo run --example quickstart`

use clsm_repro::clsm::{Db, Options, RmwDecision};

fn main() -> clsm_repro::clsm::Result<()> {
    let dir = std::env::temp_dir().join(format!("clsm-quickstart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Open (or create) a database. `Options::default()` matches the
    // paper's setup (128 MiB memtable, asynchronous logging, one
    // background compaction thread).
    let db = Db::open(&dir, Options::default())?;

    // Basic puts and gets — atomic, and gets never block.
    db.put(b"user:1:name", b"Ada")?;
    db.put(b"user:2:name", b"Grace")?;
    db.put(b"user:1:email", b"ada@example.com")?;
    println!(
        "user:1:name = {:?}",
        String::from_utf8(db.get(b"user:1:name")?.unwrap())
    );

    // Deletes store the paper's ⊥ marker.
    db.delete(b"user:2:name")?;
    assert_eq!(db.get(b"user:2:name")?, None);

    // Consistent snapshot scans: the snapshot is a frozen point in
    // time, immune to concurrent writes.
    let snapshot = db.snapshot()?;
    db.put(b"user:3:name", b"Edsger")?; // not visible to `snapshot`
    println!("snapshot contents:");
    for item in snapshot.iter()? {
        let (k, v) = item?;
        println!(
            "  {} = {}",
            String::from_utf8_lossy(&k),
            String::from_utf8_lossy(&v)
        );
    }
    assert_eq!(snapshot.get(b"user:3:name")?, None);
    assert!(db.get(b"user:3:name")?.is_some());

    // Range queries over a snapshot.
    let user1: Vec<_> = snapshot
        .range(b"user:1:", Some(b"user:2:"))?
        .collect::<Result<Vec<_>, _>>()?;
    println!("user:1 has {} attributes", user1.len());

    // Non-blocking atomic read-modify-write (Algorithm 3): an atomic
    // counter that never loses increments under concurrency.
    for _ in 0..10 {
        db.read_modify_write(b"page:views", |current| {
            let n = current.map_or(0u64, |v| u64::from_le_bytes(v.try_into().unwrap()));
            RmwDecision::Update((n + 1).to_le_bytes().to_vec())
        })?;
    }
    let views = u64::from_le_bytes(db.get(b"page:views")?.unwrap().try_into().unwrap());
    println!("page views: {views}");
    assert_eq!(views, 10);

    // Put-if-absent (the paper's RMW benchmark flavor).
    assert!(db.put_if_absent(b"config:theme", b"dark")?);
    assert!(!db.put_if_absent(b"config:theme", b"light")?);

    println!("stats: {:?}", db.stats());
    drop(db);
    std::fs::remove_dir_all(&dir).ok();
    println!("quickstart OK");
    Ok(())
}
