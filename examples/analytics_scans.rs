//! Online analytics over a live store: consistent snapshot scans while
//! writers keep updating — the §2.1 motivation ("consistent snapshot
//! scans and range queries for online analytics").
//!
//! A fleet of writer threads maintains per-account balances with the
//! invariant that the total across all accounts is constant (transfers
//! move money between accounts atomically via write batches). Analytics
//! threads repeatedly scan a snapshot and verify the invariant — any
//! torn read would break the sum.
//!
//! Run with: `cargo run --example analytics_scans`

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use clsm_repro::clsm::{Db, Options, WriteBatch, WriteOptions};

const ACCOUNTS: u64 = 200;
const INITIAL_BALANCE: u64 = 1_000;

fn account_key(i: u64) -> Vec<u8> {
    format!("account:{i:06}").into_bytes()
}

fn main() -> clsm_repro::clsm::Result<()> {
    let dir = std::env::temp_dir().join(format!("clsm-analytics-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let db = Arc::new(Db::open(&dir, Options::default())?);

    // Seed the accounts.
    for i in 0..ACCOUNTS {
        db.put(&account_key(i), &INITIAL_BALANCE.to_le_bytes())?;
    }
    let expected_total = ACCOUNTS * INITIAL_BALANCE;

    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();

    // Transfer worker: moves money between random accounts atomically.
    // A single writer keeps the read-compute-write cycle race-free;
    // multi-writer transfers would need multi-key transactions, which
    // the paper leaves to systems layered above cLSM (§1, [41]).
    for t in 0..1u64 {
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(
            move || -> clsm_repro::clsm::Result<u64> {
                let mut transfers = 0u64;
                let mut state = 0x9e3779b97f4a7c15u64 ^ t;
                while !stop.load(Ordering::Relaxed) {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    let from = state % ACCOUNTS;
                    let to = (state >> 17) % ACCOUNTS;
                    if from == to {
                        continue;
                    }
                    let amount = state % 50;
                    let from_bal = u64::from_le_bytes(
                        db.get(&account_key(from))?.unwrap().try_into().unwrap(),
                    );
                    if from_bal < amount {
                        continue;
                    }
                    let to_bal =
                        u64::from_le_bytes(db.get(&account_key(to))?.unwrap().try_into().unwrap());
                    // Atomic batch: both legs of the transfer or neither.
                    db.write(
                        WriteBatch::from(
                            &[
                                (
                                    account_key(from),
                                    Some((from_bal - amount).to_le_bytes().to_vec()),
                                ),
                                (
                                    account_key(to),
                                    Some((to_bal + amount).to_le_bytes().to_vec()),
                                ),
                            ][..],
                        ),
                        &WriteOptions::new(),
                    )?;
                    transfers += 1;
                }
                Ok(transfers)
            },
        ));
    }

    // Analytics: scan a consistent snapshot and audit the total.
    let mut audits = 0u64;
    for round in 0..30 {
        let snapshot = db.snapshot()?;
        let mut total = 0u64;
        let mut count = 0u64;
        for item in snapshot.range(b"account:", None)? {
            let (_k, v) = item?;
            total += u64::from_le_bytes(v.try_into().unwrap());
            count += 1;
        }
        assert_eq!(count, ACCOUNTS, "audit {round}: missing accounts");
        assert_eq!(total, expected_total, "audit {round}: money leaked!");
        audits += 1;
    }
    stop.store(true, Ordering::Relaxed);

    let mut transfers = 0u64;
    for h in handles {
        transfers += h.join().expect("writer panicked")?;
    }
    println!(
        "analytics OK: {audits} consistent audits over {ACCOUNTS} accounts \
         while {transfers} concurrent transfers ran; total stayed {expected_total}"
    );
    drop(db);
    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
