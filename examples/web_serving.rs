//! A web-serving style workload: the production scenario of §5.2 in
//! miniature — read-heavy traffic with a heavy-tail key popularity over
//! one shared store, served by many worker threads.
//!
//! Prints a small throughput/latency report comparing cLSM against the
//! LevelDB-style baseline on the same workload, so you can see the
//! concurrency-control difference on your own machine.
//!
//! Run with: `cargo run --release --example web_serving`

use std::sync::Arc;
use std::time::Duration;

use clsm_repro::baselines::{KvStore, LevelDbLike};
use clsm_repro::clsm::{Db, Options};
use clsm_repro::workloads::{production_dataset, run_workload, Prefill, RunConfig};

fn main() {
    let threads: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let spec = production_dataset(0, 20_000); // 93% reads, heavy tail
    let cfg = RunConfig {
        threads,
        duration: Duration::from_secs(1),
        seed: 7,
    };

    println!("web-serving workload: {} / {} threads", spec.name, threads);
    println!(
        "{:<12} {:>12} {:>12} {:>10}",
        "system", "ops/s", "p90 (µs)", "ops"
    );

    for which in ["cLSM", "LevelDB"] {
        let dir =
            std::env::temp_dir().join(format!("clsm-webserving-{}-{}", std::process::id(), which));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let opts = Options::default();
        let store: Arc<dyn KvStore> = match which {
            "cLSM" => Arc::new(Db::open(&dir, opts).unwrap()),
            _ => Arc::new(LevelDbLike::open(&dir, opts).unwrap()),
        };
        let result = run_workload(&store, &spec, &cfg, Prefill::Sequential).unwrap();
        println!(
            "{:<12} {:>12.0} {:>12.1} {:>10}",
            which,
            result.ops_per_sec(),
            result.p90_latency_us(),
            result.ops
        );
        drop(store);
        std::fs::remove_dir_all(&dir).ok();
    }
    println!("(run with --release and more threads to see scaling differences)");
}
