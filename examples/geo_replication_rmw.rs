//! Multisite update reconciliation with vector clocks via atomic RMW —
//! the use case the paper cites for read-modify-write ("useful, e.g.,
//! for multisite update reconciliation", §1; "conditional updates,
//! namely atomic read-modify-write operations" for vector clocks,
//! §2.1).
//!
//! Several "sites" concurrently push replicated updates for the same
//! keys into one store. Each stored value carries a vector clock; an
//! incoming update is applied only if its clock dominates (or is
//! concurrent with, in which case a deterministic merge wins) the
//! stored one. cLSM's RMW makes each reconcile atomic without locks.
//!
//! Run with: `cargo run --example geo_replication_rmw`

use std::sync::Arc;

use clsm_repro::clsm::{Db, Options, RmwDecision};

const SITES: usize = 4;

/// A vector clock over `SITES` sites plus a payload.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Versioned {
    clock: [u64; SITES],
    payload: Vec<u8>,
}

impl Versioned {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(SITES * 8 + self.payload.len());
        for c in self.clock {
            out.extend_from_slice(&c.to_le_bytes());
        }
        out.extend_from_slice(&self.payload);
        out
    }

    fn decode(bytes: &[u8]) -> Versioned {
        let mut clock = [0u64; SITES];
        for (i, c) in clock.iter_mut().enumerate() {
            *c = u64::from_le_bytes(bytes[i * 8..(i + 1) * 8].try_into().unwrap());
        }
        Versioned {
            clock,
            payload: bytes[SITES * 8..].to_vec(),
        }
    }

    /// `true` if `self`'s clock is ≥ other's in every component.
    fn dominates(&self, other: &Versioned) -> bool {
        self.clock.iter().zip(&other.clock).all(|(a, b)| a >= b)
    }

    /// Component-wise max of two clocks (used to merge concurrent
    /// updates deterministically).
    fn merged_clock(&self, other: &Versioned) -> [u64; SITES] {
        let mut m = [0u64; SITES];
        for (slot, (a, b)) in m.iter_mut().zip(self.clock.iter().zip(&other.clock)) {
            *slot = (*a).max(*b);
        }
        m
    }
}

/// Atomically reconciles `update` into `key`: last-dominating-write
/// wins; concurrent updates merge clocks and keep the lexicographically
/// larger payload (deterministic, site-order independent).
fn reconcile(db: &Db, key: &[u8], update: &Versioned) -> clsm_repro::clsm::Result<()> {
    db.read_modify_write(key, |current| match current {
        None => RmwDecision::Update(update.encode()),
        Some(stored_bytes) => {
            let stored = Versioned::decode(stored_bytes);
            if stored.dominates(update) {
                RmwDecision::Abort // stale or duplicate delivery
            } else if update.dominates(&stored) {
                RmwDecision::Update(update.encode())
            } else {
                // Concurrent: merge clocks, deterministic payload pick.
                let winner = if update.payload > stored.payload {
                    update.payload.clone()
                } else {
                    stored.payload.clone()
                };
                RmwDecision::Update(
                    Versioned {
                        clock: update.merged_clock(&stored),
                        payload: winner,
                    }
                    .encode(),
                )
            }
        }
    })?;
    Ok(())
}

fn main() -> clsm_repro::clsm::Result<()> {
    let dir = std::env::temp_dir().join(format!("clsm-geo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let db = Arc::new(Db::open(&dir, Options::default())?);

    const KEYS: u64 = 50;
    const UPDATES_PER_SITE: u64 = 500;

    // Each site applies updates with its own clock component advancing.
    let mut handles = Vec::new();
    for site in 0..SITES {
        let db = Arc::clone(&db);
        handles.push(std::thread::spawn(
            move || -> clsm_repro::clsm::Result<()> {
                let mut clock = [0u64; SITES];
                for i in 0..UPDATES_PER_SITE {
                    clock[site] += 1;
                    let key = format!("item:{:04}", (i * 13 + site as u64) % KEYS);
                    let update = Versioned {
                        clock,
                        payload: format!("site{site}-update{i}").into_bytes(),
                    };
                    reconcile(&db, key.as_bytes(), &update)?;
                }
                Ok(())
            },
        ));
    }
    for h in handles {
        h.join().expect("site thread panicked")?;
    }

    // Verify convergence properties: every item's clock must reflect
    // monotone, non-lost per-site progress (component i ≤ the number of
    // updates site i issued, and the store holds a merged state).
    let snap = db.snapshot()?;
    let mut items = 0;
    for item in snap.range(b"item:", None)? {
        let (_k, v) = item?;
        let stored = Versioned::decode(&v);
        for (site, &c) in stored.clock.iter().enumerate() {
            assert!(c <= UPDATES_PER_SITE, "site {site} clock ran ahead");
        }
        assert!(!stored.payload.is_empty());
        items += 1;
    }
    let conflicts = db.stats().rmw_conflicts;
    println!(
        "geo-replication OK: {items} items converged across {SITES} sites \
         ({} reconciles, {conflicts} optimistic-retry conflicts resolved)",
        SITES as u64 * UPDATES_PER_SITE
    );
    drop(snap);
    drop(db);
    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
