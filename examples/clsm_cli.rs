//! A small command-line shell over a cLSM database — the kind of
//! operational tool a real open-source release ships.
//!
//! ```text
//! cargo run --example clsm_cli -- /tmp/mydb
//! clsm> put greeting hello
//! clsm> get greeting
//! hello
//! clsm> scan a z
//! greeting = hello
//! clsm> stats
//! ...
//! clsm> verify
//! integrity OK: 1 entries checked
//! ```
//!
//! Commands: `put K V`, `get K`, `del K`, `scan [START [END]]`,
//! `incr K`, `snapshot`, `stats`, `levels`, `verify`, `compact`,
//! `help`, `quit`. Also accepts a script on stdin (non-interactive).

use std::io::{BufRead, Write};

use clsm_repro::clsm::{Db, Options, RmwDecision, Snapshot};

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "/tmp/clsm-cli-db".to_string());
    let db = match Db::open(path.as_ref(), Options::default()) {
        Ok(db) => db,
        Err(e) => {
            eprintln!("failed to open {path}: {e}");
            std::process::exit(1);
        }
    };
    println!("opened cLSM database at {path} (type `help`)");

    let stdin = std::io::stdin();
    let mut held_snapshot: Option<Snapshot> = None;
    loop {
        print!("clsm> ");
        std::io::stdout().flush().ok();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break; // EOF
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        let result = match parts.as_slice() {
            [] => Ok(()),
            ["quit"] | ["exit"] => break,
            ["help"] => {
                println!(
                    "put K V | get K | del K | scan [START [END]] | incr K |\n\
                     snapshot | snapget K | stats | levels | verify | compact | quit"
                );
                Ok(())
            }
            ["put", k, v] => db.put(k.as_bytes(), v.as_bytes()),
            ["get", k] => {
                match db.get(k.as_bytes()) {
                    Ok(Some(v)) => println!("{}", String::from_utf8_lossy(&v)),
                    Ok(None) => println!("(not found)"),
                    Err(e) => println!("error: {e}"),
                }
                Ok(())
            }
            ["del", k] => db.delete(k.as_bytes()),
            ["scan", rest @ ..] => {
                let start = rest.first().map(|s| s.as_bytes()).unwrap_or(b"");
                let end = rest.get(1).map(|s| s.as_bytes().to_vec());
                match db.snapshot().and_then(|s| {
                    let mut n = 0;
                    for item in s.range(start, end.as_deref())? {
                        let (k, v) = item?;
                        println!(
                            "{} = {}",
                            String::from_utf8_lossy(&k),
                            String::from_utf8_lossy(&v)
                        );
                        n += 1;
                        if n >= 100 {
                            println!("… (truncated at 100)");
                            break;
                        }
                    }
                    Ok(())
                }) {
                    Ok(()) => Ok(()),
                    Err(e) => {
                        println!("error: {e}");
                        Ok(())
                    }
                }
            }
            ["incr", k] => {
                let r = db.read_modify_write(k.as_bytes(), |cur| {
                    let n = cur
                        .and_then(|v| v.try_into().ok().map(u64::from_le_bytes))
                        .unwrap_or(0);
                    RmwDecision::Update((n + 1).to_le_bytes().to_vec())
                });
                match r {
                    Ok(_) => {
                        let v = db.get(k.as_bytes()).ok().flatten().unwrap_or_default();
                        let n = v.try_into().ok().map(u64::from_le_bytes).unwrap_or(0);
                        println!("{n}");
                        Ok(())
                    }
                    Err(e) => Err(e),
                }
            }
            ["snapshot"] => match db.snapshot() {
                Ok(s) => {
                    println!("holding snapshot @ts {}", s.timestamp());
                    held_snapshot = Some(s);
                    Ok(())
                }
                Err(e) => Err(e),
            },
            ["snapget", k] => {
                match &held_snapshot {
                    Some(s) => match s.get(k.as_bytes()) {
                        Ok(Some(v)) => println!("{}", String::from_utf8_lossy(&v)),
                        Ok(None) => println!("(not found at snapshot)"),
                        Err(e) => println!("error: {e}"),
                    },
                    None => println!("no snapshot held — run `snapshot` first"),
                }
                Ok(())
            }
            ["stats"] => {
                println!("{:#?}", db.stats());
                if let Some((hits, misses)) = db.cache_stats() {
                    println!("block cache: {hits} hits / {misses} misses");
                }
                Ok(())
            }
            ["levels"] => {
                for (i, n) in db.level_file_counts().iter().enumerate() {
                    println!("L{i}: {n} files");
                }
                println!("memtable: {} bytes", db.memtable_bytes());
                Ok(())
            }
            ["verify"] => {
                match db.verify_integrity() {
                    Ok(n) => println!("integrity OK: {n} entries checked"),
                    Err(e) => println!("INTEGRITY FAILURE: {e}"),
                }
                Ok(())
            }
            ["compact"] => db.compact_to_quiescence(),
            other => {
                println!("unknown command {other:?} — try `help`");
                Ok(())
            }
        };
        if let Err(e) = result {
            println!("error: {e}");
        }
    }
    println!("bye");
}
