//! Umbrella crate for the cLSM reproduction workspace.
//!
//! Re-exports the public API of every member crate so that examples and
//! integration tests can reach the whole system through one dependency.
//!
//! The primary entry point is [`clsm::Db`], the concurrent log-structured
//! data store described in *Scaling Concurrent Log-Structured Data Stores*
//! (EuroSys 2015).

#![warn(missing_docs)]

pub use clsm;
pub use clsm_baselines as baselines;
pub use clsm_skiplist as skiplist;
pub use clsm_util as util;
pub use clsm_workloads as workloads;
pub use lsm_storage as storage;
